/root/repo/target/debug/deps/fine_grained-fa6d8e97c0f72a54.d: crates/engine/tests/fine_grained.rs Cargo.toml

/root/repo/target/debug/deps/libfine_grained-fa6d8e97c0f72a54.rmeta: crates/engine/tests/fine_grained.rs Cargo.toml

crates/engine/tests/fine_grained.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
