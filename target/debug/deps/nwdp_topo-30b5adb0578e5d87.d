/root/repo/target/debug/deps/nwdp_topo-30b5adb0578e5d87.d: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

/root/repo/target/debug/deps/libnwdp_topo-30b5adb0578e5d87.rlib: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

/root/repo/target/debug/deps/libnwdp_topo-30b5adb0578e5d87.rmeta: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

crates/topo/src/lib.rs:
crates/topo/src/builtin.rs:
crates/topo/src/generate.rs:
crates/topo/src/graph.rs:
crates/topo/src/io.rs:
crates/topo/src/rocketfuel.rs:
crates/topo/src/routing.rs:
