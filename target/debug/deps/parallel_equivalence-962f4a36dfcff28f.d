/root/repo/target/debug/deps/parallel_equivalence-962f4a36dfcff28f.d: tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-962f4a36dfcff28f: tests/parallel_equivalence.rs

tests/parallel_equivalence.rs:
