/root/repo/target/debug/deps/flow_vs_simplex-9b1f26f20f624501.d: crates/lp/tests/flow_vs_simplex.rs

/root/repo/target/debug/deps/flow_vs_simplex-9b1f26f20f624501: crates/lp/tests/flow_vs_simplex.rs

crates/lp/tests/flow_vs_simplex.rs:
