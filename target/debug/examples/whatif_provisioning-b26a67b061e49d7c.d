/root/repo/target/debug/examples/whatif_provisioning-b26a67b061e49d7c.d: examples/whatif_provisioning.rs

/root/repo/target/debug/examples/whatif_provisioning-b26a67b061e49d7c: examples/whatif_provisioning.rs

examples/whatif_provisioning.rs:
