//! Structured alert plane: typed detection records with sanitized
//! JSONL/CEF egress, suppression windows, and token-bucket rate limiting.
//!
//! # Model
//!
//! A detection site calls [`emit_alert`] with a detection class, kind,
//! subject, severity and (when available) the triggering 5-tuple. The
//! record is stamped with the emitting thread's replay context — node id
//! and session id, set once per session via [`set_alert_context`] — and
//! buffered in a per-thread `Vec` (no lock), following the trace-journal
//! discipline: buffers drain to a global pending queue when they fill or
//! when the thread exits (scoped workers drain on join, panicking
//! workers during unwind).
//!
//! [`flush_alerts`] merges the pending queue deterministically (total
//! order over every record field, so shard count and thread schedule
//! never change the output), applies the suppression window and the
//! token bucket, and encodes the survivors to every installed writer.
//! Timestamps are replay-clock fractions (`session_id ×`
//! [`set_alert_clock_scale`]), not wall time, so rate limiting and
//! suppression are reproducible run to run.
//!
//! # Accounting — never silently lossy
//!
//! Every emitted record ends up in exactly one bucket:
//!
//! ```text
//! emitted == written + deduped + dropped_ratelimit      (after a flush)
//! ```
//!
//! [`alert_stats`] exposes the four counters; when metric collection is
//! on they are mirrored into the `alert.*` counters of the global
//! registry at flush time. A record is `written` when it clears the
//! pipeline, even if no writer is installed — the pipeline decision, not
//! the file system, is what the invariant tracks.
//!
//! # Egress formats
//!
//! - **JSONL** — one flat JSON object per line, string fields escaped
//!   exactly like the trace journal; hostile field contents (quotes,
//!   braces, control characters) round-trip through [`crate::parse_json`].
//! - **CEF** — `CEF:0|nwdp|nids|0.1|kind|name|severity|extension` with
//!   strict sanitization: `\`, `|`, newlines and control characters are
//!   escaped in header fields, `=` additionally in extension values.
//!   The escape is injective ([`cef_unescape`] inverts it) and the
//!   output is always a single line with exactly seven unescaped pipes
//!   ([`split_cef`] validates) — a hostile alert field can never inject
//!   a fake record or corrupt a real one.
//!
//! # Cost model
//!
//! The plane is **off by default**: [`alert_enabled`] is one relaxed
//! atomic load, and every call in this module short-circuits on it.
//! With `NWDP_ALERT` unset nothing is stamped, buffered, or written —
//! outputs stay bit-identical to a build without the alert plane.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One structured detection event.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    /// Replay-clock timestamp (session id × clock scale), not wall time.
    pub ts: f64,
    /// Emitting node.
    pub node: u64,
    /// Detection class (module name, e.g. `"scan"`, `"http"`).
    pub class: String,
    /// Detection kind within the class (e.g. `"address_scan"`).
    pub kind: String,
    /// Dedup subject: what the detection is *about* (scanner address,
    /// flood victim, connection key).
    pub subject: u64,
    /// 1 (informational) ..= 10 (critical), CEF convention.
    pub severity: u8,
    pub src_ip: u32,
    pub dst_ip: u32,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: u8,
}

impl AlertRecord {
    /// Suppression key: two records with the same class/kind/subject are
    /// duplicates for windowing purposes.
    fn dedup_key(&self) -> (String, String, u64) {
        (self.class.clone(), self.kind.clone(), self.subject)
    }
}

/// Cumulative pipeline accounting; see the module docs for the balance
/// invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlertStats {
    pub emitted: u64,
    pub written: u64,
    pub deduped: u64,
    pub dropped_ratelimit: u64,
}

/// Egress encoding for an installed writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertFormat {
    Jsonl,
    Cef,
}

impl AlertFormat {
    /// Parse the `:format` suffix of `NWDP_ALERT=FILE[:format]`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "jsonl" | "json" => Some(AlertFormat::Jsonl),
            "cef" => Some(AlertFormat::Cef),
            _ => None,
        }
    }
}

/// Pipeline tuning. `rate`/`burst` are tokens on the replay clock (a
/// rate of 100 allows 100 written alerts per replay-time unit, i.e. per
/// full trace when the clock scale is `1/n_sessions`); `rate <= 0` or a
/// non-finite rate disables the limiter. `suppress` is the dedup window
/// on the same clock; records with an identical dedup key within
/// `suppress` of the last *written* one are counted `deduped` (a window
/// of 0 still folds exact same-timestamp duplicates, e.g. a shard-merge
/// re-detection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertConfig {
    pub rate: f64,
    pub burst: f64,
    pub suppress: f64,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig { rate: 0.0, burst: 32.0, suppress: 0.0 }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EMITTED: AtomicU64 = AtomicU64::new(0);
/// Replay-clock scale as f64 bits; 0 (the bits of 0.0) means "unset",
/// read as 1.0.
static CLOCK_SCALE_BITS: AtomicU64 = AtomicU64::new(0);

/// Is the alert plane on? One relaxed atomic load — the only cost every
/// detection site pays when `NWDP_ALERT` is unset.
#[inline(always)]
pub fn alert_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the alert plane on or off process-wide.
pub fn set_alert_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Set the replay-clock scale: an emitted record's `ts` is
/// `session_id × scale`. Benches set `1 / n_sessions` so timestamps are
/// trace fractions in `[0, 1]`; the default is 1.0.
pub fn set_alert_clock_scale(scale: f64) {
    CLOCK_SCALE_BITS.store(scale.to_bits(), Ordering::Relaxed);
}

fn clock_scale() -> f64 {
    let bits = CLOCK_SCALE_BITS.load(Ordering::Relaxed);
    if bits == 0 {
        1.0
    } else {
        f64::from_bits(bits)
    }
}

/// Histogram bounds for `alert.emit_ns` (per-emit latency, ns).
pub fn emit_latency_bounds() -> Vec<f64> {
    crate::Histogram::exponential_bounds(20.0, 1.8, 24)
}

// ---------------------------------------------------------------------
// Per-thread collection
// ---------------------------------------------------------------------

const TLS_FLUSH_AT: usize = 1024;

struct LocalBuf {
    recs: Vec<AlertRecord>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if !self.recs.is_empty() {
            let mut pending = pending_slot().lock().unwrap_or_else(|e| e.into_inner());
            pending.append(&mut self.recs);
        }
    }
}

thread_local! {
    static BUF: RefCell<LocalBuf> = const { RefCell::new(LocalBuf { recs: Vec::new() }) };
    /// (node, session_id) replay context for records emitted on this
    /// thread.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn pending_slot() -> &'static Mutex<Vec<AlertRecord>> {
    static PENDING: Mutex<Vec<AlertRecord>> = Mutex::new(Vec::new());
    &PENDING
}

/// Stamp the replay context for subsequent [`emit_alert`] calls on this
/// thread. The engine calls this once per session (node id + session
/// id); it is a thread-local store, safe under the scoped-thread
/// fan-outs.
#[inline]
pub fn set_alert_context(node: u64, session_id: u64) {
    CONTEXT.with(|c| c.set((node, session_id)));
}

/// Emit one structured alert. No-op unless [`alert_enabled`]. The
/// record is buffered thread-locally; nothing is encoded or written
/// until [`flush_alerts`]. When metric collection is also on, the
/// emission latency lands in the `alert.emit_ns` histogram.
pub fn emit_alert(
    class: &str,
    kind: &str,
    subject: u64,
    severity: u8,
    tuple: Option<(u32, u32, u16, u16, u8)>,
) {
    if !alert_enabled() {
        return;
    }
    let t0 = crate::now_if_enabled();
    let (node, session_id) = CONTEXT.with(Cell::get);
    let (src_ip, dst_ip, src_port, dst_port, proto) = tuple.unwrap_or((0, 0, 0, 0, 0));
    let rec = AlertRecord {
        ts: session_id as f64 * clock_scale(),
        node,
        class: class.to_string(),
        kind: kind.to_string(),
        subject,
        severity,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
    };
    EMITTED.fetch_add(1, Ordering::Relaxed);
    let full = BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.recs.push(rec);
        b.recs.len() >= TLS_FLUSH_AT
    });
    if full {
        drain_local();
    }
    if let Some(t0) = t0 {
        crate::histogram("alert.emit_ns", &emit_latency_bounds())
            .observe(t0.elapsed().as_nanos() as f64);
    }
}

/// Move this thread's buffered records to the global pending queue.
fn drain_local() {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if !b.recs.is_empty() {
            let mut pending = pending_slot().lock().unwrap_or_else(|e| e.into_inner());
            pending.append(&mut b.recs);
        }
    });
}

// ---------------------------------------------------------------------
// Pipeline: deterministic merge → suppression → token bucket → egress
// ---------------------------------------------------------------------

struct Pipeline {
    cfg: AlertConfig,
    /// Token bucket state on the replay clock.
    tokens: f64,
    clock: f64,
    /// Last *written* timestamp per dedup key.
    last_written: BTreeMap<(String, String, u64), f64>,
    written: u64,
    deduped: u64,
    dropped_ratelimit: u64,
    /// Per-class `[written, deduped, dropped_ratelimit]`.
    per_class: BTreeMap<String, [u64; 3]>,
    /// Written records per talker (source address, falling back to the
    /// subject for tuple-less records).
    talkers: BTreeMap<u64, u64>,
    /// `[emitted, written, deduped, dropped]` already mirrored into the
    /// metrics registry, so re-flushing adds only deltas.
    mirrored: [u64; 4],
}

fn pipeline_slot() -> &'static Mutex<Pipeline> {
    static PIPE: Mutex<Pipeline> = Mutex::new(Pipeline {
        cfg: AlertConfig { rate: 0.0, burst: 32.0, suppress: 0.0 },
        tokens: 32.0,
        clock: 0.0,
        last_written: BTreeMap::new(),
        written: 0,
        deduped: 0,
        dropped_ratelimit: 0,
        per_class: BTreeMap::new(),
        talkers: BTreeMap::new(),
        mirrored: [0; 4],
    });
    &PIPE
}

type AlertWriter = (AlertFormat, Box<dyn Write + Send>);

fn writers_slot() -> &'static Mutex<Vec<AlertWriter>> {
    static WRITERS: Mutex<Vec<AlertWriter>> = Mutex::new(Vec::new());
    &WRITERS
}

/// Install an egress writer. Multiple writers (e.g. JSONL and CEF side
/// by side) each receive every written record; the `written` counter
/// still counts each record once.
pub fn add_alert_writer(format: AlertFormat, w: Box<dyn Write + Send>) {
    writers_slot().lock().unwrap_or_else(|e| e.into_inner()).push((format, w));
}

/// Drop all egress writers (tests and bench teardown).
pub fn clear_alert_writers() {
    writers_slot().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Replace the pipeline tuning; refills the token bucket to the new
/// burst. Counters and suppression history are preserved.
pub fn set_alert_config(cfg: AlertConfig) {
    let mut pipe = pipeline_slot().lock().unwrap_or_else(|e| e.into_inner());
    pipe.cfg = cfg;
    pipe.tokens = cfg.burst;
}

/// Drain, merge, filter and encode every buffered alert. Deterministic:
/// the batch is sorted by a total order over all record fields before
/// the (stateful) suppression and rate-limit passes, so thread schedule
/// and shard count cannot change what is written. Returns the updated
/// cumulative stats; a writer error is reported *after* the pipeline
/// accounting is updated (the decision stands even if the disk write
/// failed).
pub fn flush_alerts() -> std::io::Result<AlertStats> {
    drain_local();
    let mut batch = {
        let mut pending = pending_slot().lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *pending)
    };
    batch.sort_by(|a, b| {
        a.ts.total_cmp(&b.ts)
            .then_with(|| a.node.cmp(&b.node))
            .then_with(|| a.class.cmp(&b.class))
            .then_with(|| a.kind.cmp(&b.kind))
            .then_with(|| a.subject.cmp(&b.subject))
            .then_with(|| a.src_ip.cmp(&b.src_ip))
            .then_with(|| a.dst_ip.cmp(&b.dst_ip))
            .then_with(|| a.src_port.cmp(&b.src_port))
            .then_with(|| a.dst_port.cmp(&b.dst_port))
            .then_with(|| a.proto.cmp(&b.proto))
            .then_with(|| a.severity.cmp(&b.severity))
    });

    let mut out: Vec<AlertRecord> = Vec::with_capacity(batch.len());
    let stats;
    {
        let mut pipe = pipeline_slot().lock().unwrap_or_else(|e| e.into_inner());
        for rec in batch {
            let key = rec.dedup_key();
            // Suppression window (≤ so exact same-instant duplicates fold
            // even at a window of 0).
            if let Some(&last) = pipe.last_written.get(&key) {
                if rec.ts - last <= pipe.cfg.suppress {
                    pipe.deduped += 1;
                    pipe.per_class.entry(rec.class.clone()).or_insert([0; 3])[1] += 1;
                    continue;
                }
            }
            // Token bucket on the replay clock.
            if pipe.cfg.rate > 0.0 && pipe.cfg.rate.is_finite() {
                if rec.ts > pipe.clock {
                    pipe.tokens =
                        pipe.cfg.burst.min(pipe.tokens + (rec.ts - pipe.clock) * pipe.cfg.rate);
                    pipe.clock = rec.ts;
                }
                if pipe.tokens >= 1.0 {
                    pipe.tokens -= 1.0;
                } else {
                    pipe.dropped_ratelimit += 1;
                    pipe.per_class.entry(rec.class.clone()).or_insert([0; 3])[2] += 1;
                    continue;
                }
            }
            pipe.written += 1;
            pipe.per_class.entry(rec.class.clone()).or_insert([0; 3])[0] += 1;
            let talker = if rec.src_ip != 0 { rec.src_ip as u64 } else { rec.subject };
            *pipe.talkers.entry(talker).or_insert(0) += 1;
            pipe.last_written.insert(key, rec.ts);
            out.push(rec);
        }
        stats = AlertStats {
            emitted: EMITTED.load(Ordering::Relaxed),
            written: pipe.written,
            deduped: pipe.deduped,
            dropped_ratelimit: pipe.dropped_ratelimit,
        };
        if crate::enabled() {
            let now = [stats.emitted, stats.written, stats.deduped, stats.dropped_ratelimit];
            let names =
                ["alert.emitted", "alert.written", "alert.deduped", "alert.dropped_ratelimit"];
            for (i, name) in names.iter().enumerate() {
                crate::counter(name).add(now[i].saturating_sub(pipe.mirrored[i]));
            }
            pipe.mirrored = now;
        }
    }

    let mut writers = writers_slot().lock().unwrap_or_else(|e| e.into_inner());
    let mut first_err: Option<std::io::Error> = None;
    for (format, w) in writers.iter_mut() {
        for rec in &out {
            let line = match format {
                AlertFormat::Jsonl => encode_jsonl(rec),
                AlertFormat::Cef => encode_cef(rec),
            };
            let res = w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n"));
            if let Err(e) = res {
                first_err.get_or_insert(e);
                break;
            }
        }
        if let Err(e) = w.flush() {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(stats),
    }
}

/// Current cumulative accounting. `emitted` includes records still
/// buffered; the balance invariant holds after [`flush_alerts`] once all
/// worker threads have exited (their buffers drain on thread death).
pub fn alert_stats() -> AlertStats {
    let pipe = pipeline_slot().lock().unwrap_or_else(|e| e.into_inner());
    AlertStats {
        emitted: EMITTED.load(Ordering::Relaxed),
        written: pipe.written,
        deduped: pipe.deduped,
        dropped_ratelimit: pipe.dropped_ratelimit,
    }
}

/// Per-class attribution: `(class, written, deduped, dropped_ratelimit)`
/// sorted by class name.
pub fn alert_class_stats() -> Vec<(String, u64, u64, u64)> {
    let pipe = pipeline_slot().lock().unwrap_or_else(|e| e.into_inner());
    pipe.per_class.iter().map(|(c, v)| (c.clone(), v[0], v[1], v[2])).collect()
}

/// Top `n` talkers by written alerts: `(source address or subject,
/// count)` sorted by count descending, then key ascending.
pub fn alert_top_talkers(n: usize) -> Vec<(u64, u64)> {
    let pipe = pipeline_slot().lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<(u64, u64)> = pipe.talkers.iter().map(|(&k, &c)| (k, c)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v.truncate(n);
    v
}

/// Reset all pipeline state and counters (tests and bench setup). Does
/// not touch installed writers or the enabled gate.
pub fn reset_alerts() {
    drain_local();
    pending_slot().lock().unwrap_or_else(|e| e.into_inner()).clear();
    EMITTED.store(0, Ordering::Relaxed);
    let mut pipe = pipeline_slot().lock().unwrap_or_else(|e| e.into_inner());
    pipe.tokens = pipe.cfg.burst;
    pipe.clock = 0.0;
    pipe.last_written.clear();
    pipe.written = 0;
    pipe.deduped = 0;
    pipe.dropped_ratelimit = 0;
    pipe.per_class.clear();
    pipe.talkers.clear();
    pipe.mirrored = [0; 4];
}

// ---------------------------------------------------------------------
// Encoders
// ---------------------------------------------------------------------

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Encode one record as a single JSONL line (no trailing newline). The
/// output parses with [`crate::parse_json`] and string fields round-trip
/// whatever bytes the detection put in them.
pub fn encode_jsonl(rec: &AlertRecord) -> String {
    let mut s = String::with_capacity(192);
    let _ = write!(s, "{{\"ts\":{:?},\"node\":{},\"class\":\"", rec.ts, rec.node);
    json_escape_into(&mut s, &rec.class);
    s.push_str("\",\"kind\":\"");
    json_escape_into(&mut s, &rec.kind);
    let _ = write!(
        s,
        "\",\"subject\":{},\"severity\":{},\"src_ip\":{},\"dst_ip\":{},\"src_port\":{},\"dst_port\":{},\"proto\":{}}}",
        rec.subject, rec.severity, rec.src_ip, rec.dst_ip, rec.src_port, rec.dst_port, rec.proto
    );
    s
}

/// CEF sanitization: `\` and `|` always escape, `=` additionally in
/// extension values; newlines become the two-character sequences `\n` /
/// `\r` and remaining control characters `\xNN`, so the output is one
/// line no matter what the input holds. Injective — [`cef_unescape`]
/// recovers the original exactly.
fn cef_escape_into(out: &mut String, s: &str, extension: bool) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            '=' if extension => out.push_str("\\="),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f => {
                let _ = write!(out, "\\x{:02x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn fmt_ip(ip: u32) -> String {
    format!("{}.{}.{}.{}", ip >> 24, (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff)
}

/// Encode one record as a single CEF line (no trailing newline):
/// `CEF:0|nwdp|nids|0.1|kind|class kind|severity|extension`.
pub fn encode_cef(rec: &AlertRecord) -> String {
    let mut s = String::with_capacity(224);
    s.push_str("CEF:0|nwdp|nids|0.1|");
    cef_escape_into(&mut s, &rec.kind, false);
    s.push('|');
    cef_escape_into(&mut s, &rec.class, false);
    s.push(' ');
    cef_escape_into(&mut s, &rec.kind, false);
    let _ = write!(s, "|{}|ts={:?} node={}", rec.severity, rec.ts, rec.node);
    s.push_str(" src=");
    s.push_str(&fmt_ip(rec.src_ip));
    let _ = write!(s, " spt={}", rec.src_port);
    s.push_str(" dst=");
    s.push_str(&fmt_ip(rec.dst_ip));
    let _ = write!(s, " dpt={} proto={} subject={} cat=", rec.dst_port, rec.proto, rec.subject);
    cef_escape_into(&mut s, &rec.class, true);
    s.push_str(" act=");
    cef_escape_into(&mut s, &rec.kind, true);
    s
}

/// Invert the CEF escape. Returns `None` on a malformed escape sequence
/// (dangling `\`, unknown escape, bad hex).
pub fn cef_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            '|' => out.push('|'),
            '=' => out.push('='),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            'x' => {
                let hi = it.next()?.to_digit(16)?;
                let lo = it.next()?.to_digit(16)?;
                out.push(char::from_u32(hi * 16 + lo)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Split a CEF line into its 7 (still-escaped) header fields and the
/// extension. Returns `None` unless the line has *exactly* seven
/// unescaped pipes before the extension and none after — the structural
/// property a hostile field must not be able to break.
pub fn split_cef(line: &str) -> Option<(Vec<String>, String)> {
    let mut parts: Vec<String> = vec![String::new()];
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            if let Some(last) = parts.last_mut() {
                last.push('\\');
                last.push(c);
            }
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '|' => {
                if parts.len() >= 8 {
                    // An unescaped pipe inside the extension: invalid.
                    return None;
                }
                parts.push(String::new());
            }
            c => {
                if let Some(last) = parts.last_mut() {
                    last.push(c);
                }
            }
        }
    }
    if escaped || parts.len() != 8 {
        return None;
    }
    let ext = parts.pop().unwrap_or_default();
    Some((parts, ext))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, MutexGuard};

    /// Alert state is process-global; serialize the tests that touch it.
    fn guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct Capture(Arc<Mutex<Vec<u8>>>);
    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn fresh(cfg: AlertConfig) {
        clear_alert_writers();
        set_alert_config(cfg);
        reset_alerts();
        set_alert_enabled(true);
        set_alert_clock_scale(1.0);
    }

    fn teardown() {
        set_alert_enabled(false);
        clear_alert_writers();
        set_alert_config(AlertConfig::default());
        reset_alerts();
        set_alert_clock_scale(1.0);
    }

    fn rec(ts: f64, class: &str, kind: &str, subject: u64) -> AlertRecord {
        AlertRecord {
            ts,
            node: 3,
            class: class.to_string(),
            kind: kind.to_string(),
            subject,
            severity: 5,
            src_ip: 0x0a00_0001,
            dst_ip: 0x0a00_0002,
            src_port: 1234,
            dst_port: 80,
            proto: 6,
        }
    }

    #[test]
    fn off_by_default_emit_is_noop() {
        let _g = guard();
        fresh(AlertConfig::default());
        set_alert_enabled(false);
        emit_alert("scan", "address_scan", 7, 5, None);
        let stats = flush_alerts().unwrap();
        assert_eq!(stats, AlertStats::default());
        teardown();
    }

    #[test]
    fn accounting_balances_with_suppression_and_ratelimit() {
        let _g = guard();
        fresh(AlertConfig { rate: 1.0, burst: 2.0, suppress: 0.1 });
        set_alert_clock_scale(0.1); // ts = sid / 10
                                    // Six emissions: two exact duplicates of the first (deduped), the
                                    // rest distinct subjects at ts 0.1/0.2/0.3; the bucket starts with
                                    // 2 tokens and refills 1/unit, so 2 are written and 2 dropped.
        for (sid, subject) in [(0u64, 1u64), (0, 1), (0, 1), (1, 2), (2, 3), (3, 4)] {
            set_alert_context(9, sid);
            emit_alert("scan", "address_scan", subject, 5, None);
        }
        let stats = flush_alerts().unwrap();
        assert_eq!(
            stats.emitted,
            stats.written + stats.deduped + stats.dropped_ratelimit,
            "balance: {stats:?}"
        );
        assert_eq!(stats.emitted, 6);
        assert_eq!(stats.deduped, 2, "exact duplicates fold: {stats:?}");
        assert!(stats.dropped_ratelimit > 0, "tight bucket must drop: {stats:?}");
        let classes = alert_class_stats();
        assert_eq!(classes.len(), 1);
        let (_, w, d, r) = classes[0].clone();
        assert_eq!((w, d, r), (stats.written, stats.deduped, stats.dropped_ratelimit));
        teardown();
    }

    #[test]
    fn suppression_window_folds_repeats_within_window_only() {
        let _g = guard();
        fresh(AlertConfig { rate: 0.0, burst: 32.0, suppress: 0.25 });
        set_alert_clock_scale(0.1);
        for sid in [0u64, 1, 2, 5, 6] {
            set_alert_context(1, sid);
            emit_alert("syn", "syn_flood", 42, 8, None);
        }
        let stats = flush_alerts().unwrap();
        // ts 0.0 written; 0.1, 0.2 within window; 0.5 written; 0.6 within.
        assert_eq!((stats.written, stats.deduped), (2, 3), "{stats:?}");
        assert_eq!(stats.emitted, stats.written + stats.deduped + stats.dropped_ratelimit);
        teardown();
    }

    #[test]
    fn deterministic_merge_sorts_across_threads() {
        let _g = guard();
        fresh(AlertConfig::default());
        let buf = Arc::new(Mutex::new(Vec::new()));
        add_alert_writer(AlertFormat::Jsonl, Box::new(Capture(Arc::clone(&buf))));
        // Emit out of order and from a second thread; the flush must sort
        // by (ts, node, ...).
        set_alert_context(2, 5);
        emit_alert("scan", "address_scan", 7, 5, None);
        std::thread::spawn(|| {
            set_alert_context(1, 3);
            emit_alert("scan", "address_scan", 9, 5, None);
        })
        .join()
        .unwrap();
        let stats = flush_alerts().unwrap();
        assert_eq!(stats.written, 2);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let ts: Vec<f64> = text
            .lines()
            .map(|l| crate::parse_json(l).unwrap().get("ts").and_then(crate::Json::as_f64).unwrap())
            .collect();
        assert_eq!(ts, vec![3.0, 5.0], "merged in replay order");
        teardown();
    }

    #[test]
    fn written_counts_once_with_two_writers() {
        let _g = guard();
        fresh(AlertConfig::default());
        let jl = Arc::new(Mutex::new(Vec::new()));
        let cef = Arc::new(Mutex::new(Vec::new()));
        add_alert_writer(AlertFormat::Jsonl, Box::new(Capture(Arc::clone(&jl))));
        add_alert_writer(AlertFormat::Cef, Box::new(Capture(Arc::clone(&cef))));
        set_alert_context(4, 1);
        emit_alert("sig", "signature_match", 11, 7, Some((0x01020304, 0x05060708, 80, 443, 6)));
        let stats = flush_alerts().unwrap();
        assert_eq!(stats.written, 1);
        let jl_text = String::from_utf8(jl.lock().unwrap().clone()).unwrap();
        let cef_text = String::from_utf8(cef.lock().unwrap().clone()).unwrap();
        assert_eq!(jl_text.lines().count(), 1);
        assert_eq!(cef_text.lines().count(), 1);
        assert!(cef_text.starts_with("CEF:0|nwdp|nids|0.1|"));
        assert!(cef_text.contains("src=1.2.3.4"), "{cef_text}");
        assert!(cef_text.contains("spt=80"));
        teardown();
    }

    #[test]
    fn hostile_fields_cannot_break_cef_structure() {
        let hostile = "evil|class=inject\nCEF:0|x|x|x|x|x|x|\r\\back\u{0}\u{7f}end";
        let mut r = rec(0.5, hostile, "kind|with=stuff\n", 1);
        r.kind = format!("{hostile}2");
        let line = encode_cef(&r);
        assert_eq!(line.lines().count(), 1, "always a single line");
        let (header, ext) = split_cef(&line).expect("structurally valid CEF");
        assert_eq!(header.len(), 7);
        assert_eq!(header[0], "CEF:0");
        // Escaped fields round-trip to the original hostile content.
        assert_eq!(cef_unescape(&header[4]).unwrap(), r.kind);
        // Extension: cat value recovers the hostile class.
        let cat = ext.split(" cat=").nth(1).unwrap().split(" act=").next().unwrap();
        assert_eq!(cef_unescape(cat).unwrap(), r.class);
    }

    #[test]
    fn hostile_fields_round_trip_jsonl() {
        let hostile = "a\"b\\c\nd\re\tf\u{1}{\"nested\":[1,2";
        let r = rec(0.25, hostile, "kind", 9);
        let line = encode_jsonl(&r);
        assert_eq!(line.lines().count(), 1);
        let doc = crate::parse_json(&line).expect("JSONL line parses");
        assert_eq!(doc.get("class").and_then(crate::Json::as_str), Some(hostile));
        assert_eq!(doc.get("subject").and_then(crate::Json::as_f64), Some(9.0));
    }

    #[test]
    fn cef_unescape_rejects_malformed() {
        assert_eq!(cef_unescape("dangling\\"), None);
        assert_eq!(cef_unescape("bad\\q"), None);
        assert_eq!(cef_unescape("bad\\xzz"), None);
        assert_eq!(cef_unescape("ok\\x41"), Some("okA".to_string()));
    }

    #[test]
    fn split_cef_rejects_wrong_pipe_counts() {
        assert!(split_cef("CEF:0|a|b|c|d|e|f|ext").is_some());
        assert!(split_cef("CEF:0|a|b|c|d|e|f|ext|trailing").is_none(), "8th pipe");
        assert!(split_cef("CEF:0|a|b|c|d|e|ext").is_none(), "6 pipes");
        assert!(split_cef("CEF:0|a|b|c|d|e|f|ext\\").is_none(), "dangling escape");
        let (h, _) = split_cef("CEF:0|a\\|b|b|c|d|e|f|ext").unwrap();
        assert_eq!(cef_unescape(&h[1]).unwrap(), "a|b");
    }

    #[test]
    fn top_talkers_ranked_by_written() {
        let _g = guard();
        fresh(AlertConfig::default());
        set_alert_clock_scale(1.0);
        for (sid, src) in [(1u64, 7u32), (2, 7), (3, 9)] {
            set_alert_context(0, sid);
            emit_alert("scan", "address_scan", sid, 5, Some((src, 1, 2, 3, 6)));
        }
        flush_alerts().unwrap();
        assert_eq!(alert_top_talkers(5), vec![(7, 2), (9, 1)]);
        assert_eq!(alert_top_talkers(1), vec![(7, 2)]);
        teardown();
    }
}
