/root/repo/target/debug/deps/nips_exact_vs_rounding-86eea9502f4f0a3e.d: tests/nips_exact_vs_rounding.rs Cargo.toml

/root/repo/target/debug/deps/libnips_exact_vs_rounding-86eea9502f4f0a3e.rmeta: tests/nips_exact_vs_rounding.rs Cargo.toml

tests/nips_exact_vs_rounding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
