//! Deterministic fault injection for packet streams.
//!
//! Real capture points drop, duplicate, and reorder packets. The injector
//! transforms a session's packet sequence deterministically per session id,
//! so every node observing the same session sees the *same* degraded
//! stream — which is what end-to-end loss looks like, and what the
//! coordinated-equals-standalone equivalence property must survive.

use crate::session::{Packet, Session};
use nwdp_topo::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A whole-node observation outage: `node` sees *nothing* over the
/// half-open replay-fraction window `[from, until)`. Unlike the per-packet
/// faults — which every on-path observer sees identically — a blackout is
/// a property of one capture point: the packets still flow, but this node
/// is not watching. This is the traffic-layer view of a node crash
/// (`until = 1.0`) or partition used by the resilience tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeBlackout {
    pub node: NodeId,
    /// Start of the outage, as a fraction of the replay (`session.id /
    /// total sessions`).
    pub from: f64,
    /// End of the outage (exclusive); `1.0` means it never ends.
    pub until: f64,
}

/// Fault injection configuration (probabilities per packet, plus an
/// optional node blackout).
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    pub drop_p: f64,
    pub dup_p: f64,
    /// Probability that a packet is swapped with its successor.
    pub reorder_p: f64,
    pub seed: u64,
    /// Optional whole-node outage (see [`NodeBlackout`]).
    pub blackout: Option<NodeBlackout>,
}

impl FaultInjector {
    pub fn new(drop_p: f64, dup_p: f64, reorder_p: f64, seed: u64) -> Self {
        for p in [drop_p, dup_p, reorder_p] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        FaultInjector { drop_p, dup_p, reorder_p, seed, blackout: None }
    }

    /// No faults (identity transform).
    pub fn none() -> Self {
        FaultInjector { drop_p: 0.0, dup_p: 0.0, reorder_p: 0.0, seed: 0, blackout: None }
    }

    /// A pure node blackout (no packet-level faults).
    pub fn node_blackout(node: NodeId, from: f64, until: f64) -> Self {
        assert!((0.0..=1.0).contains(&from) && from <= until, "blackout window out of order");
        FaultInjector { blackout: Some(NodeBlackout { node, from, until }), ..Self::none() }
    }

    /// Does `node` observe anything at replay fraction `now`? `false`
    /// exactly inside the blackout window of a blacked-out node; the
    /// caller skips the whole session for that observer.
    pub fn observes(&self, node: NodeId, now: f64) -> bool {
        match self.blackout {
            Some(b) => node != b.node || now < b.from || now >= b.until,
            None => true,
        }
    }

    /// Apply the faults to a session as seen by `node` at replay fraction
    /// `now`: an empty stream during a blackout, the packet-level faults
    /// of [`FaultInjector::apply`] otherwise.
    pub fn apply_at<'a>(
        &self,
        session: &Session,
        packets: Vec<Packet<'a>>,
        node: NodeId,
        now: f64,
    ) -> Vec<Packet<'a>> {
        let mut out = Vec::with_capacity(packets.len() + 2);
        self.apply_at_into(session, &packets, node, now, &mut out);
        out
    }

    /// Buffer-reuse variant of [`FaultInjector::apply_at`]: the degraded
    /// stream is written into `out` (cleared first).
    pub fn apply_at_into<'a>(
        &self,
        session: &Session,
        packets: &[Packet<'a>],
        node: NodeId,
        now: f64,
        out: &mut Vec<Packet<'a>>,
    ) {
        if !self.observes(node, now) {
            out.clear();
            return;
        }
        self.apply_into(session, packets, out);
    }

    /// Apply the faults to a session's packets. Deterministic in
    /// `(self.seed, session.id)`.
    pub fn apply<'a>(&self, session: &Session, packets: Vec<Packet<'a>>) -> Vec<Packet<'a>> {
        if self.drop_p == 0.0 && self.dup_p == 0.0 && self.reorder_p == 0.0 {
            return packets;
        }
        let mut out = Vec::with_capacity(packets.len() + 2);
        self.apply_into(session, &packets, &mut out);
        out
    }

    /// Buffer-reuse variant of [`FaultInjector::apply`]: the degraded
    /// stream is written into `out` (cleared first), so a caller replaying
    /// many sessions allocates no per-session `Vec`. Identical RNG
    /// discipline to `apply` — both consume the same draws in the same
    /// order, so they produce the same degraded stream.
    pub fn apply_into<'a>(
        &self,
        session: &Session,
        packets: &[Packet<'a>],
        out: &mut Vec<Packet<'a>>,
    ) {
        out.clear();
        if self.drop_p == 0.0 && self.dup_p == 0.0 && self.reorder_p == 0.0 {
            out.extend_from_slice(packets);
            return;
        }
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ session.id.wrapping_mul(0x9e3779b97f4a7c15));
        for pkt in packets {
            if rng.random_bool(self.drop_p) {
                continue;
            }
            out.push(*pkt);
            if rng.random_bool(self.dup_p) {
                out.push(*pkt);
            }
        }
        // Adjacent swaps.
        if self.reorder_p > 0.0 && out.len() >= 2 {
            for i in 0..out.len() - 1 {
                if rng.random_bool(self.reorder_p) {
                    out.swap(i, i + 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProtocol;
    use crate::session::SessionKind;
    use nwdp_hash::FiveTuple;
    use nwdp_topo::NodeId;

    fn session(id: u64) -> Session {
        Session {
            id,
            tuple: FiveTuple::new(0x0a000001, 0x0a010001, 40000, 80, 6),
            kind: SessionKind::Normal(AppProtocol::Http),
            src_node: NodeId(0),
            dst_node: NodeId(1),
            exchanges: 2,
        }
    }

    #[test]
    fn identity_when_disabled() {
        let s = session(1);
        let pkts = s.packets();
        let out = FaultInjector::none().apply(&s, s.packets());
        assert_eq!(out.len(), pkts.len());
    }

    #[test]
    fn deterministic_per_session() {
        let s = session(7);
        let f = FaultInjector::new(0.2, 0.1, 0.1, 99);
        let a = f.apply(&s, s.packets());
        let b = f.apply(&s, s.packets());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(x.size, y.size);
        }
        // Different sessions get different fault patterns (almost surely
        // over many sessions).
        let lens: std::collections::HashSet<usize> =
            (0..64).map(|i| f.apply(&session(i), session(i).packets()).len()).collect();
        assert!(lens.len() > 1, "faults should vary across sessions");
    }

    #[test]
    fn drop_rate_roughly_respected() {
        let f = FaultInjector::new(0.3, 0.0, 0.0, 5);
        let mut kept = 0usize;
        let mut total = 0usize;
        for i in 0..500 {
            let s = session(i);
            total += s.packets().len();
            kept += f.apply(&s, s.packets()).len();
        }
        let rate = 1.0 - kept as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn blackout_blinds_one_node_for_its_window() {
        let f = FaultInjector::node_blackout(NodeId(2), 0.25, 0.75);
        let s = session(9);
        // The blacked-out node sees nothing inside the window...
        assert!(f.apply_at(&s, s.packets(), NodeId(2), 0.5).is_empty());
        assert!(!f.observes(NodeId(2), 0.25));
        assert!(!f.observes(NodeId(2), 0.74999));
        // ...and everything outside it; other nodes are untouched.
        assert!(f.observes(NodeId(2), 0.2));
        assert!(f.observes(NodeId(2), 0.75));
        assert_eq!(f.apply_at(&s, s.packets(), NodeId(1), 0.5).len(), s.packets().len());
        // Packet-level faults still compose with the blackout for
        // sighted observers.
        let mut g = FaultInjector::new(1.0, 0.0, 0.0, 1);
        g.blackout = Some(NodeBlackout { node: NodeId(2), from: 0.0, until: 1.0 });
        assert!(g.apply_at(&s, s.packets(), NodeId(1), 0.5).is_empty(), "all dropped");
    }

    #[test]
    fn apply_into_matches_apply_exactly() {
        let f = FaultInjector::new(0.2, 0.15, 0.1, 99);
        let mut buf = Vec::new();
        for i in 0..128 {
            let s = session(i);
            let fresh = f.apply(&s, s.packets());
            f.apply_into(&s, &s.packets(), &mut buf); // clears previous contents
            assert_eq!(buf.len(), fresh.len(), "session {i}");
            for (a, b) in buf.iter().zip(&fresh) {
                assert_eq!(a.tuple, b.tuple);
                assert_eq!(a.size, b.size);
                assert_eq!(a.payload, b.payload);
            }
        }
    }

    #[test]
    fn duplicates_increase_count() {
        let f = FaultInjector::new(0.0, 0.5, 0.0, 5);
        let s = session(3);
        let out = f.apply(&s, s.packets());
        assert!(out.len() > s.packets().len());
    }
}
