/root/repo/target/debug/deps/rand-a531618b95c458ce.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-a531618b95c458ce.rlib: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-a531618b95c458ce.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
