//! Routing changes without losing connection state (paper §5).
//!
//! A link cost changes (maintenance, reweighting), routes shift, and the
//! optimization is re-run. This example plans the transition: how much of
//! the hash space changes owner (duplicated work while old connections
//! drain), and which nodes need explicit state transfer because the new
//! routes bypass them.
//!
//! Run with: `cargo run --release --example routing_change`

use nwdp::core::migration::plan_transition;
use nwdp::prelude::*;

fn compile(topo: &nwdp::topo::Topology) -> (NidsDeployment, SamplingManifest) {
    let paths = PathDb::shortest_paths(topo);
    let tm = TrafficMatrix::gravity(topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let a = solve_nids_lp(&dep, &cfg).expect("LP solves");
    let m = generate_manifests(&dep, &a.d);
    (dep, m)
}

fn main() {
    let before = nwdp::topo::internet2();
    let (old_dep, old_man) = compile(&before);

    // Maintenance on Chicago–New York: cost x10, traffic reroutes south.
    let mut after = nwdp::topo::Topology::new("Internet2-maintenance");
    for n in before.nodes() {
        after.add_node(before.node(n).name.clone(), before.population(n));
    }
    let chi = before.find("Chicago").unwrap();
    let nyc = before.find("NewYork").unwrap();
    for l in before.links() {
        let w = if (l.a == chi && l.b == nyc) || (l.a == nyc && l.b == chi) {
            l.weight * 10.0
        } else {
            l.weight
        };
        after.add_link(l.a, l.b, w);
    }
    let (new_dep, new_man) = compile(&after);

    let plan = plan_transition(&old_dep, &old_man, &new_dep, &new_man, 51);
    println!("reroute: Chicago–NewYork link cost x10\n");
    println!(
        "mean hash-space churn per unit: {:.1}% (duplicated work while old connections drain)",
        plan.mean_moved_fraction * 100.0
    );
    println!("units needing any transition: {}", plan.units.len());
    let transfers: usize = plan.units.iter().map(|t| t.transfer_from.len()).sum();
    let drains: usize = plan.units.iter().map(|t| t.drain_at.len()).sum();
    println!("owner drains in place (still on path): {drains}");
    println!("explicit state transfers (node left the path): {transfers}");

    // Which nodes hand off the most state?
    let mut by_node = std::collections::BTreeMap::new();
    for t in &plan.units {
        for n in &t.transfer_from {
            *by_node.entry(*n).or_insert(0usize) += 1;
        }
    }
    if by_node.is_empty() {
        println!("\nno state transfers needed: every old owner remains on-path");
    } else {
        println!("\nstate transfers by node:");
        for (n, count) in by_node {
            println!("  {:>14}: {count} units", before.node(n).name);
        }
    }
}
