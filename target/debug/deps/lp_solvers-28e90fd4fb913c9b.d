/root/repo/target/debug/deps/lp_solvers-28e90fd4fb913c9b.d: crates/bench/benches/lp_solvers.rs Cargo.toml

/root/repo/target/debug/deps/liblp_solvers-28e90fd4fb913c9b.rmeta: crates/bench/benches/lp_solvers.rs Cargo.toml

crates/bench/benches/lp_solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
