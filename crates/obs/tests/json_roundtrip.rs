//! Round-trip property tests for the hand-rolled `obs::json` layer:
//! `parse(render(v)) == v` must hold for arbitrary finite-numbered JSON
//! trees, including hostile string escapes, deep nesting, and numeric
//! edge cases (-0.0, denormals, huge exponents). No external dependency:
//! randomness is a tiny xorshift generator seeded deterministically.

use nwdp_obs::{parse_json, Json};
use std::collections::BTreeMap;

/// Deterministic xorshift64* — enough entropy for structural fuzzing,
/// zero dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_string(rng: &mut Rng) -> String {
    let pool: &[char] = &[
        'a',
        'b',
        '"',
        '\\',
        '\n',
        '\r',
        '\t',
        '\u{8}',
        '\u{c}',
        '/',
        'é',
        '✓',
        '\u{1}',
        ' ',
        '{',
        '}',
        '[',
        ']',
        ':',
        ',',
        '\u{10348}',
    ];
    let len = rng.below(12) as usize;
    (0..len).map(|_| pool[rng.below(pool.len() as u64) as usize]).collect()
}

fn random_number(rng: &mut Rng) -> f64 {
    match rng.below(8) {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MIN_POSITIVE,
        3 => 1e300,
        4 => -1e-300,
        5 => (rng.next() as i64) as f64,
        6 => f64::from_bits(rng.next() >> 2), // positive, possibly denormal
        _ => rng.next() as f64 / 1e3,
    }
}

fn random_json(rng: &mut Rng, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.below(if leaf_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => {
            let mut v = random_number(rng);
            if !v.is_finite() {
                v = 42.0; // non-finite renders as null by design; tested separately
            }
            Json::Num(v)
        }
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.below(4) as usize;
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(4) as usize;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(random_string(rng), random_json(rng, depth - 1));
            }
            Json::Obj(map)
        }
    }
}

#[test]
fn random_trees_round_trip() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for case in 0..500 {
        let v = random_json(&mut rng, 4);
        let text = v.render();
        let back = parse_json(&text)
            .unwrap_or_else(|e| panic!("case {case}: render produced unparseable {text:?}: {e}"));
        assert_eq!(back, v, "case {case}: round-trip mismatch for {text:?}");
        // Rendering is a fixed point: parse → render must reproduce the text.
        assert_eq!(back.render(), text, "case {case}: render not canonical");
    }
}

#[test]
fn hostile_escapes_round_trip() {
    for s in [
        "",
        "\"",
        "\\",
        "\\\"\\",
        "line\nbreak\r\t",
        "\u{0}\u{1}\u{1f}",
        "控制\u{7f}字符",
        "emoji \u{1F600} and astral \u{10348}",
        "ends with backslash\\",
    ] {
        let v = Json::Str(s.to_string());
        let text = v.render();
        assert_eq!(parse_json(&text).expect("parses"), v, "string {s:?} via {text:?}");
    }
}

#[test]
fn deep_nesting_round_trips() {
    // ~100 levels of alternating array/object nesting.
    let mut v = Json::Num(1.0);
    for i in 0..100 {
        v = if i % 2 == 0 {
            Json::Arr(vec![v])
        } else {
            let mut m = BTreeMap::new();
            m.insert("k".to_string(), v);
            Json::Obj(m)
        };
    }
    let text = v.render();
    assert_eq!(parse_json(&text).expect("deep tree parses"), v);
}

#[test]
fn numeric_edge_cases() {
    for x in [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::MIN,
        5e-324, // smallest denormal
        1e300,
        -1e300,
        123456789012345680.0,
    ] {
        let text = Json::Num(x).render();
        let back = parse_json(&text).expect("number parses");
        let y = back.as_f64().expect("still a number");
        assert_eq!(y.to_bits(), x.to_bits(), "{x:?} -> {text} -> {y:?}");
    }
    // -0.0 must keep its sign bit through the round trip.
    let neg0 = parse_json(&Json::Num(-0.0).render()).unwrap().as_f64().unwrap();
    assert!(neg0.is_sign_negative());
    // Non-finite values render as null by design (JSON has no literals
    // for them) — they degrade, not crash.
    assert_eq!(parse_json(&Json::Num(f64::NAN).render()).unwrap(), Json::Null);
    assert_eq!(parse_json(&Json::Num(f64::INFINITY).render()).unwrap(), Json::Null);
}
