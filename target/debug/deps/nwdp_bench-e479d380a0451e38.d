/root/repo/target/debug/deps/nwdp_bench-e479d380a0451e38.d: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_bench-e479d380a0451e38.rmeta: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig678.rs:
crates/bench/src/opttime.rs:
crates/bench/src/output.rs:
crates/bench/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
