/root/repo/target/debug/deps/proptest_lp-ff201bcd866a1880.d: crates/lp/tests/proptest_lp.rs

/root/repo/target/debug/deps/proptest_lp-ff201bcd866a1880: crates/lp/tests/proptest_lp.rs

crates/lp/tests/proptest_lp.rs:
