/root/repo/target/debug/deps/flow_vs_simplex-02c6ea2728ba8f01.d: crates/lp/tests/flow_vs_simplex.rs

/root/repo/target/debug/deps/flow_vs_simplex-02c6ea2728ba8f01: crates/lp/tests/flow_vs_simplex.rs

crates/lp/tests/flow_vs_simplex.rs:
