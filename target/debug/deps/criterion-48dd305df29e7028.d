/root/repo/target/debug/deps/criterion-48dd305df29e7028.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-48dd305df29e7028: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
