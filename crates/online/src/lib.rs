//! # nwdp-online — online adaptation for NIPS deployment (paper §3.5)
//!
//! Static deployments assume known match rates; a real adversary varies
//! them. This crate implements the paper's Follow-the-Perturbed-Leader
//! treatment (Kalai–Vempala): [`fpl::run_fpl`] plays the repeated
//! deployment game against an [`adversary::Adversary`], re-solving the
//! sampling LP each epoch on perturbed history, and reports the Fig 11
//! normalized-regret trajectory.

pub mod adversary;
pub mod fpl;

pub use adversary::{Adversary, Reactive, Shifting, StochasticUniform};
pub use fpl::{run_fpl, FplConfig, FplError, OnlineRun};
