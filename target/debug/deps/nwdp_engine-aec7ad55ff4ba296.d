/root/repo/target/debug/deps/nwdp_engine-aec7ad55ff4ba296.d: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_engine-aec7ad55ff4ba296.rmeta: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/ac.rs:
crates/engine/src/conn.rs:
crates/engine/src/cost.rs:
crates/engine/src/engine.rs:
crates/engine/src/modules.rs:
crates/engine/src/netwide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
