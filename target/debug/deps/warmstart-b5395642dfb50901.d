/root/repo/target/debug/deps/warmstart-b5395642dfb50901.d: crates/lp/tests/warmstart.rs

/root/repo/target/debug/deps/warmstart-b5395642dfb50901: crates/lp/tests/warmstart.rs

crates/lp/tests/warmstart.rs:
