/root/repo/target/debug/examples/whatif_provisioning-bb4c7ce48b01839f.d: examples/whatif_provisioning.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_provisioning-bb4c7ce48b01839f.rmeta: examples/whatif_provisioning.rs Cargo.toml

examples/whatif_provisioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
