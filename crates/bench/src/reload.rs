//! `repro reload` — closed-loop live reconfiguration under a traffic mix
//! shift.
//!
//! Streams an Internet2 / 9-module deployment whose traffic mix *changes
//! mid-run*: the first half of the trace follows the gravity traffic
//! matrix the LP was provisioned against, the second half switches to a
//! uniform mix. The [`nwdp_engine::ReloadController`] observes each
//! epoch's per-pair counts, re-solves through the warm-start +
//! dual-repair chain, and hot-swaps validated manifests into the live
//! engines between epochs. One boundary is deliberately sabotaged
//! ([`Sabotage::AtEpoch`]) so every run also exercises the validation
//! gate's rejection path: the corrupt candidate must be refused with the
//! old manifest still serving.
//!
//! The run asserts the ISSUE 8 acceptance criteria directly: at least 3
//! live swaps, at least 1 rejected manifest, and a `resilience.coverage`
//! series that never drops below the full-coverage repair bound.
//!
//! Knobs: `NWDP_RELOAD_EPOCHS` (epoch count, clamped to ≥ 5 so the swap /
//! rejection assertions stay meaningful) and `NWDP_RELOAD_BLEND` (EWMA
//! weight of the observed mix, default 0.5).

use crate::output::{f2, f4, Table};
use crate::scenario::{default_caps, NidsContext};
use crate::Scale;
use nwdp_core::parallel;
use nwdp_engine::{
    run_coordinated_stream_reload, Placement, ReloadConfig, ReloadOutcome, ReloadRun, Sabotage,
};
use nwdp_hash::KeyedHasher;
use nwdp_obs as obs;
use nwdp_traffic::{SessionStream, TraceConfig, TrafficMatrix};
use std::time::Instant;

/// One closed-loop bench run with its control-loop bookkeeping.
#[derive(Debug)]
pub struct ReloadBench {
    pub sessions: usize,
    pub epochs: usize,
    pub shards: usize,
    pub blend: f64,
    pub run: ReloadRun,
    pub wall_s: f64,
    /// Warm-start hits / fallbacks across the run's re-solves.
    pub warm_hits: u64,
    pub warm_fallbacks: u64,
}

/// `NWDP_RELOAD_BLEND` when set and parseable to a weight in `[0, 1]`,
/// else `default`. Warns on stderr for an unusable value instead of
/// silently ignoring it (same contract as `NWDP_SHARDS`).
fn blend_from_env(default: f64) -> f64 {
    let Some(raw) = std::env::var_os("NWDP_RELOAD_BLEND") else { return default };
    let raw = raw.to_string_lossy().into_owned();
    match raw.trim().parse::<f64>() {
        Ok(b) if (0.0..=1.0).contains(&b) => b,
        _ => {
            parallel::note_invalid_env_expecting("NWDP_RELOAD_BLEND", &raw, "a number in [0, 1]");
            default
        }
    }
}

fn counter_snapshot(prefix: &str) -> u64 {
    obs::snapshot()
        .iter()
        .filter_map(|(name, v)| match v {
            obs::SnapshotValue::Counter(c) if name.starts_with(prefix) => Some(*c),
            _ => None,
        })
        .sum()
}

/// Run the mix-shift reload scenario at `scale`.
pub fn run(scale: Scale) -> ReloadBench {
    let sessions = match scale {
        Scale::Quick => 10_000,
        Scale::Full => 40_000,
    };
    let epochs = parallel::env_count("NWDP_RELOAD_EPOCHS").unwrap_or(6).max(5);
    run_with(sessions, epochs, blend_from_env(0.5))
}

/// Parameterized core of [`run`]: `epochs ≥ 5` keeps the ≥ 3 swaps +
/// ≥ 1 rejection acceptance assertions satisfiable.
pub fn run_with(sessions: usize, epochs: usize, blend: f64) -> ReloadBench {
    assert!(epochs >= 5, "need at least 4 boundaries for 3 swaps + 1 rejection");
    let seed = 29u64;
    let ctx = NidsContext::internet2();
    let dep = ctx.deployment(9);
    let (_assignment, manifest) = ctx.manifests(&dep);
    let caps = vec![default_caps(); dep.num_nodes];
    let hasher = KeyedHasher::with_key(5);
    let shards = nwdp_engine::stream_shards();
    let uniform = TrafficMatrix::uniform(&ctx.topo);

    // Mix shift: the first half of the trace follows the provisioned
    // gravity matrix, the second half a uniform one. Session ids stay
    // globally sequential so the epoch boundaries cut across the shift.
    let half = sessions / 2;
    let cfg_a = TraceConfig::new(half, seed);
    let cfg_b = TraceConfig::new(sessions - half, seed + 1);
    let source = || {
        let tail = SessionStream::new(&ctx.topo, &uniform, &cfg_b).map(move |mut s| {
            s.id += half as u64;
            s
        });
        SessionStream::new(&ctx.topo, &ctx.tm, &cfg_a).chain(tail)
    };

    let reload_cfg = ReloadConfig {
        epochs,
        total_sessions: sessions as u64,
        caps: &caps,
        redundancy: 1.0,
        max_load: 1.0,
        blend,
        sabotage: Sabotage::AtEpoch(2),
    };

    // Metrics stay on for the run (restored after): the control loop is
    // the object under test, and the `reload.*` counters plus the
    // `resilience.coverage` series are part of the artifact contract the
    // CI gate checks.
    let was = obs::enabled();
    obs::set_enabled(true);
    let hits0 = counter_snapshot("simplex.warmstart_hits");
    let falls0 = counter_snapshot("simplex.warmstart_fallbacks");
    let t0 = Instant::now();
    let run = run_coordinated_stream_reload(
        &dep,
        &manifest,
        &ctx.paths,
        source,
        Placement::EventEngine,
        hasher,
        shards,
        &reload_cfg,
    )
    .expect("reload run");
    let wall_s = t0.elapsed().as_secs_f64();
    let warm_hits = counter_snapshot("simplex.warmstart_hits") - hits0;
    let warm_fallbacks = counter_snapshot("simplex.warmstart_fallbacks") - falls0;
    obs::set_enabled(was);

    // ISSUE 8 acceptance: ≥ 3 live swaps, ≥ 1 rejected manifest, and the
    // coverage series never below the full-coverage repair bound.
    assert!(run.swaps() >= 3, "expected ≥ 3 live swaps, got {}", run.swaps());
    assert!(run.rejected() >= 1, "expected ≥ 1 rejected manifest, got {}", run.rejected());
    assert!(
        run.coverage_floor() >= 1.0 - 1e-9,
        "coverage dipped below the repair bound: {}",
        run.coverage_floor()
    );

    ReloadBench { sessions, epochs, shards, blend, run, wall_s, warm_hits, warm_fallbacks }
}

fn outcome_label(o: &ReloadOutcome) -> (&'static str, String) {
    match o {
        ReloadOutcome::Swapped { moved_fraction } => ("swapped", f4(*moved_fraction)),
        ReloadOutcome::Rejected(e) => ("rejected", format!("{e}")),
        ReloadOutcome::SolveFailed(e) => ("solve_failed", format!("{e:?}")),
    }
}

/// Per-boundary CSV: what the controller decided at each epoch boundary.
pub fn table(b: &ReloadBench) -> Table {
    let mut t = Table::new(
        "Closed-loop reload decisions (Internet2, gravity -> uniform mix shift)",
        &["epoch", "at", "outcome", "detail", "lp_iters", "resolve_ms", "coverage"],
    );
    for d in &b.run.decisions {
        let (label, detail) = outcome_label(&d.outcome);
        t.row(vec![
            d.epoch.to_string(),
            f4(d.at),
            label.to_string(),
            detail,
            d.lp_iterations.to_string(),
            f2(d.resolve_micros as f64 / 1e3),
            f4(d.coverage_after),
        ]);
    }
    t
}

/// Replay-clock coverage series across every swap — the CSV counterpart
/// of the `resilience.coverage` obs series this run records.
pub fn coverage_timeseries(b: &ReloadBench) -> Table {
    let mut t = Table::new(
        "Coverage of the live manifest over the replay clock (reload run)",
        &["t", "coverage"],
    );
    for &(at, cov) in &b.run.coverage {
        t.row(vec![f4(at), f4(cov)]);
    }
    t
}

/// One-row summary: swap/rejection counts, coverage floor, control-loop
/// latency, and the warm-start hit rate of the re-solve chain.
pub fn summary(b: &ReloadBench) -> Table {
    let mut t = Table::new(
        "Closed-loop reload summary",
        &[
            "sessions",
            "epochs",
            "shards",
            "blend",
            "swapped",
            "rejected",
            "coverage_floor",
            "mean_resolve_ms",
            "warm_hits",
            "warm_fallbacks",
            "wall_s",
        ],
    );
    let n = b.run.decisions.len().max(1);
    let mean_ms =
        b.run.decisions.iter().map(|d| d.resolve_micros as f64 / 1e3).sum::<f64>() / n as f64;
    t.row(vec![
        b.sessions.to_string(),
        b.epochs.to_string(),
        b.shards.to_string(),
        f2(b.blend),
        b.run.swaps().to_string(),
        b.run.rejected().to_string(),
        format!("{:.9}", b.run.coverage_floor()),
        f2(mean_ms),
        b.warm_hits.to_string(),
        b.warm_fallbacks.to_string(),
        f2(b.wall_s),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_shift_run_meets_the_acceptance_criteria() {
        // run_with asserts the acceptance criteria internally.
        let b = run_with(4000, 5, 0.5);
        assert_eq!(b.run.decisions.len(), 4);
        assert_eq!(b.run.swaps() + b.run.rejected(), 4);
        // Tables are well-formed: one decision row per boundary, one
        // coverage row per sample.
        assert_eq!(table(&b).rows.len(), 4);
        assert_eq!(coverage_timeseries(&b).rows.len(), b.run.coverage.len());
        assert_eq!(summary(&b).rows.len(), 1);
    }
}
