//! Network-wide NIPS deployment (paper §3): the NP-hard placement MILP,
//! its LP relaxation, randomized rounding with practical refinements, and
//! exact small-instance machinery.

pub mod hardness;
pub mod model;
pub mod relax;
pub mod round;

pub use hardness::{integrality_gap_instance, solve_exact, to_milp};
pub use model::{DistanceModel, NipsInstance, NipsPath, NipsRule, SolutionD};
pub use relax::{solve_relaxation, Layout, RelaxError, RelaxSolution};
pub use round::{
    round_best_of, round_once, solve_inner_flow, solve_inner_flow_weighted, solve_inner_simplex,
    NipsSolution, RoundError, RoundingOpts, Strategy,
};
