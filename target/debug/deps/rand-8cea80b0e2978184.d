/root/repo/target/debug/deps/rand-8cea80b0e2978184.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs Cargo.toml

/root/repo/target/debug/deps/librand-8cea80b0e2978184.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs Cargo.toml

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
