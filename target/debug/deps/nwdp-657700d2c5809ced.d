/root/repo/target/debug/deps/nwdp-657700d2c5809ced.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp-657700d2c5809ced.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-W__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-W__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
