/root/repo/target/release/deps/nwdp-a43ebea26d01c145.d: src/lib.rs

/root/repo/target/release/deps/libnwdp-a43ebea26d01c145.rlib: src/lib.rs

/root/repo/target/release/deps/libnwdp-a43ebea26d01c145.rmeta: src/lib.rs

src/lib.rs:
