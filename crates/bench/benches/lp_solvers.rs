//! LP-solver benches: the dense vs sparse basis-backend crossover (the
//! ablation DESIGN.md calls out) and the NIDS assignment LP kernel behind
//! the paper's "0.42 s for a 50-node topology" claim (§2.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nwdp_core::nids::{solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::{build_units, AnalysisClass};
use nwdp_lp::simplex::dense::DenseInverse;
use nwdp_lp::simplex::solve_with_backend;
use nwdp_lp::simplex::sparse::SparseFactors;
use nwdp_lp::{Cmp, Problem, Sense, SolverOpts};
use nwdp_topo::{waxman, PathDb};
use nwdp_traffic::{TrafficMatrix, VolumeModel};
use std::hint::black_box;

/// A GUB-structured packing LP shaped like the deployment problems.
fn structured_lp(groups: usize, caps: usize) -> Problem {
    let mut p = Problem::new(Sense::Max);
    let per = 4;
    let vars: Vec<_> = (0..groups * per)
        .map(|j| p.add_var(format!("x{j}"), 0.0, 1.0, 1.0 + (j % 7) as f64 * 0.3))
        .collect();
    for g in 0..groups {
        let terms: Vec<_> = (0..per).map(|t| (vars[g * per + t], 1.0)).collect();
        p.add_con(format!("g{g}"), &terms, Cmp::Le, 1.0);
    }
    for cidx in 0..caps {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .filter(|(j, _)| j % caps == cidx)
            .map(|(j, &v)| (v, 1.0 + (j % 3) as f64))
            .collect();
        p.add_con(format!("cap{cidx}"), &terms, Cmp::Le, groups as f64 / 8.0);
    }
    p
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_backend");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(8));
    for &groups in &[50usize, 200, 600] {
        let p = structured_lp(groups, 12);
        g.bench_with_input(BenchmarkId::new("dense", groups), &p, |b, p| {
            b.iter(|| {
                let mut be = DenseInverse::new();
                black_box(solve_with_backend(p, &SolverOpts::default(), &mut be))
            })
        });
        g.bench_with_input(BenchmarkId::new("sparse", groups), &p, |b, p| {
            b.iter(|| {
                let mut be = SparseFactors::new();
                black_box(solve_with_backend(p, &SolverOpts::default(), &mut be))
            })
        });
    }
    g.finish();
}

fn bench_nids_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("nids_lp_solve");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    for &n in &[11usize, 25] {
        let topo = if n == 11 {
            nwdp_topo::internet2()
        } else {
            waxman(format!("w{n}"), n, 0.25, 0.2, n as u64)
        };
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::gravity(&topo);
        let vol = VolumeModel::scaled_for(&topo);
        let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        g.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, _| {
            b.iter(|| black_box(solve_nids_lp(&dep, &cfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_backends, bench_nids_lp);
criterion_main!(benches);
