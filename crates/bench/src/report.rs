//! `repro report` — post-mortem analysis of a run's trace journal and
//! metrics snapshot.
//!
//! Ingests the JSONL event journal written under `NWDP_TRACE` (and,
//! optionally, the metrics JSON written under `NWDP_METRICS` /
//! `--metrics-out`) and renders:
//!
//! - a per-phase wall-time breakdown (the `phase.*` spans the `repro`
//!   harness opens around each experiment),
//! - the top-N hottest span names by *self* time (own duration minus
//!   same-thread children, so concurrent child threads don't double-bill
//!   a parent),
//! - warm-start hit rates for the simplex basis reuse and the rowgen
//!   solve-context reuse,
//! - optionally a Chrome-trace (`chrome://tracing` / Perfetto) export of
//!   the full span forest.
//!
//! Everything here is pure text-in/tables-out so it unit-tests on
//! synthetic journals.

use crate::output::Table;
use nwdp_obs::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One reconstructed span (a joined B/E record pair).
#[derive(Debug, Clone)]
pub struct SpanRec {
    pub id: u64,
    pub parent: Option<u64>,
    pub tid: u64,
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
    /// False when the journal ended before the span's close record (a
    /// crash or an unflushed buffer); `end_ns` is then the last timestamp
    /// seen anywhere in the journal.
    pub closed: bool,
}

impl SpanRec {
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A parsed journal: the span forest plus line-level accounting.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    pub spans: Vec<SpanRec>,
    /// Instant (`"ev":"I"`) records.
    pub events: usize,
    /// Lines that failed to parse or lacked required keys.
    pub malformed: usize,
    /// Spans with no close record.
    pub unclosed: usize,
}

fn get_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

/// Parse a JSONL journal into a [`Journal`]. Never fails: bad lines are
/// counted in `malformed`, unclosed spans are clamped to the last
/// timestamp observed.
pub fn parse_journal(text: &str) -> Journal {
    let mut out = Journal::default();
    // id → index into out.spans, for joining E records.
    let mut open: BTreeMap<u64, usize> = BTreeMap::new();
    let mut last_ts = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = parse_json(line) else {
            out.malformed += 1;
            continue;
        };
        let Some(ts) = get_u64(&doc, "ts") else {
            out.malformed += 1;
            continue;
        };
        last_ts = last_ts.max(ts);
        match doc.get("ev").and_then(Json::as_str) {
            Some("B") => {
                let (Some(id), Some(name)) =
                    (get_u64(&doc, "id"), doc.get("name").and_then(Json::as_str))
                else {
                    out.malformed += 1;
                    continue;
                };
                open.insert(id, out.spans.len());
                out.spans.push(SpanRec {
                    id,
                    parent: get_u64(&doc, "parent"),
                    tid: get_u64(&doc, "tid").unwrap_or(0),
                    name: name.to_string(),
                    start_ns: ts,
                    end_ns: ts,
                    closed: false,
                });
            }
            Some("E") => match get_u64(&doc, "id").and_then(|id| open.remove(&id)) {
                Some(idx) => {
                    out.spans[idx].end_ns = ts;
                    out.spans[idx].closed = true;
                }
                None => out.malformed += 1,
            },
            Some("I") => out.events += 1,
            _ => out.malformed += 1,
        }
    }
    for (_, idx) in open {
        out.spans[idx].end_ns = last_ts.max(out.spans[idx].start_ns);
        out.unclosed += 1;
    }
    out
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Per-phase wall-time breakdown: the direct `phase.*` children of the
/// root `repro` span. Returns `None` when the journal has no root span
/// (a non-harness trace). The final row sums the phases against the
/// root's own wall time — the run's phase coverage.
pub fn phase_table(j: &Journal) -> Option<Table> {
    let root = j.spans.iter().find(|s| s.parent.is_none() && s.name == "repro")?;
    let root_dur = root.dur_ns().max(1);
    let mut t = Table::new("phase breakdown", &["phase", "wall_s", "of_run"]);
    let mut phase_total = 0u64;
    for s in &j.spans {
        if s.parent == Some(root.id) && s.name.starts_with("phase.") {
            phase_total += s.dur_ns();
            t.row(vec![
                s.name["phase.".len()..].to_string(),
                fmt_secs(s.dur_ns()),
                fmt_pct(s.dur_ns() as f64 / root_dur as f64),
            ]);
        }
    }
    t.row(vec![
        "(all phases)".to_string(),
        fmt_secs(phase_total),
        fmt_pct(phase_total as f64 / root_dur as f64),
    ]);
    t.row(vec!["(run total)".to_string(), fmt_secs(root.dur_ns()), fmt_pct(1.0)]);
    Some(t)
}

/// Fraction of the root span's wall time covered by its `phase.*`
/// children (the `repro report` acceptance metric).
pub fn phase_coverage(j: &Journal) -> Option<f64> {
    let root = j.spans.iter().find(|s| s.parent.is_none() && s.name == "repro")?;
    let total: u64 = j
        .spans
        .iter()
        .filter(|s| s.parent == Some(root.id) && s.name.starts_with("phase."))
        .map(SpanRec::dur_ns)
        .sum();
    Some(total as f64 / root.dur_ns().max(1) as f64)
}

/// Top-N span names by total *self* time. Self time is a span's duration
/// minus the summed durations of its same-thread children: children on
/// other threads run concurrently, so subtracting them would make busy
/// fan-out parents look idle (or negative).
pub fn hottest_table(j: &Journal, top: usize) -> Table {
    // parent id → summed same-thread child duration.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    let by_id: BTreeMap<u64, &SpanRec> = j.spans.iter().map(|s| (s.id, s)).collect();
    for s in &j.spans {
        if let Some(p) = s.parent.and_then(|p| by_id.get(&p)) {
            if p.tid == s.tid {
                *child_ns.entry(p.id).or_default() += s.dur_ns();
            }
        }
    }
    // name → (count, total self ns, total ns).
    let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for s in &j.spans {
        let own = s.dur_ns().saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        let e = agg.entry(s.name.as_str()).or_default();
        e.0 += 1;
        e.1 += own;
        e.2 += s.dur_ns();
    }
    let mut rows: Vec<(&str, u64, u64, u64)> =
        agg.into_iter().map(|(n, (c, own, tot))| (n, c, own, tot)).collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let mut t = Table::new(
        format!("hottest spans (top {top} by self time)"),
        &["span", "count", "self_s", "total_s"],
    );
    for (name, count, own, tot) in rows.into_iter().take(top) {
        t.row(vec![name.to_string(), count.to_string(), fmt_secs(own), fmt_secs(tot)]);
    }
    t
}

/// Shard utilization of streaming data-plane runs: for every
/// `engine.stream` span, the `engine.stream_shard` workers that ran inside
/// its wall-clock window (time containment, not span ancestry — the shard
/// spans sit under `parallel.worker` parents when the fan-out is
/// threaded). Busy is the summed shard wall time; idle is the rest of the
/// `workers × wall` slot area, i.e. time workers spent waiting on the
/// slowest shard. Returns `None` when the journal has no streaming runs.
pub fn stream_shard_table(j: &Journal) -> Option<Table> {
    let streams: Vec<&SpanRec> = j.spans.iter().filter(|s| s.name == "engine.stream").collect();
    if streams.is_empty() {
        return None;
    }
    let mut t = Table::new(
        "stream shard utilization",
        &["run", "workers", "wall_s", "busy_s", "idle_s", "busy_pct"],
    );
    for (i, run) in streams.iter().enumerate() {
        let shard_durs: Vec<u64> = j
            .spans
            .iter()
            .filter(|s| {
                s.name == "engine.stream_shard"
                    && s.start_ns >= run.start_ns
                    && s.start_ns <= run.end_ns
            })
            .map(SpanRec::dur_ns)
            .collect();
        let workers = shard_durs.len() as u64;
        let busy: u64 = shard_durs.iter().sum();
        let slots = workers * run.dur_ns();
        let idle = slots.saturating_sub(busy);
        t.row(vec![
            (i + 1).to_string(),
            workers.to_string(),
            fmt_secs(run.dur_ns()),
            fmt_secs(busy),
            fmt_secs(idle),
            if slots > 0 { fmt_pct(busy as f64 / slots as f64) } else { "n/a".to_string() },
        ]);
    }
    Some(t)
}

fn counter(doc: &Json, name: &str) -> u64 {
    doc.get(&format!("counters/{name}")).and_then(Json::as_f64).unwrap_or(0.0) as u64
}

/// Warm-start effectiveness from the metrics snapshot: simplex basis
/// reuse (per terminal LP solve) and rowgen solve-context reuse (per
/// cutting-plane run).
pub fn warmstart_table(metrics: &Json) -> Table {
    let mut t =
        Table::new("warm-start hit rates", &["layer", "attempts", "hits", "hit_rate", "note"]);
    let hits = counter(metrics, "simplex.warmstart_hits");
    let falls = counter(metrics, "simplex.warmstart_fallbacks");
    let attempts = hits + falls;
    let rate = |h: u64, a: u64| {
        if a == 0 {
            "n/a".to_string()
        } else {
            fmt_pct(h as f64 / a as f64)
        }
    };
    // Fallback attribution: `warmstart_fallbacks` is the sum of the two
    // cause counters (rejected = basis failed validation and the dual
    // phase could not repair it; singular = factorization died).
    let rejected = counter(metrics, "simplex.warmstart_rejected");
    let singular = counter(metrics, "simplex.warmstart_singular");
    t.row(vec![
        "simplex basis".to_string(),
        attempts.to_string(),
        hits.to_string(),
        rate(hits, attempts),
        format!(
            "{} warm pivots; fallbacks: {rejected} rejected, {singular} singular",
            counter(metrics, "simplex.warmstart_iterations")
        ),
    ]);
    let dual_runs = counter(metrics, "simplex.dual_phase_runs");
    if dual_runs > 0 {
        let repairs = counter(metrics, "simplex.dual_repairs");
        t.row(vec![
            "dual repair".to_string(),
            dual_runs.to_string(),
            repairs.to_string(),
            rate(repairs, dual_runs),
            format!(
                "{} dual pivots, {} bound flips",
                counter(metrics, "simplex.dual_pivots"),
                counter(metrics, "simplex.dual_flips")
            ),
        ]);
    }
    let ctx_hits = counter(metrics, "rowgen.ctx_hits");
    let solves = counter(metrics, "rowgen.solves");
    t.row(vec![
        "rowgen context".to_string(),
        solves.to_string(),
        ctx_hits.to_string(),
        rate(ctx_hits, solves),
        format!("{} iterations saved", counter(metrics, "rowgen.iterations_saved")),
    ]);
    t
}

fn hist_field(doc: &Json, hist: &str, field: &str) -> f64 {
    doc.get(&format!("histograms/{hist}/{field}")).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Control-plane message accounting (`net.*`, the PR 9 counters) from
/// the metrics snapshot. `None` when the run held no cluster traffic.
/// The drop balance is restated in the note column so an unbalanced
/// snapshot is visible at a glance.
pub fn cluster_table(metrics: &Json) -> Option<Table> {
    let sends = counter(metrics, "net.sends");
    if sends == 0 {
        return None;
    }
    let delivered = counter(metrics, "net.delivered");
    let loss = counter(metrics, "net.drops_loss");
    let cut = counter(metrics, "net.drops_cut");
    let mut t = Table::new("control plane (net.*)", &["metric", "value", "note"]);
    let balance = if sends == delivered + loss + cut {
        "balanced".to_string()
    } else {
        format!("UNBALANCED: {} delivered + {} dropped", delivered, loss + cut)
    };
    t.row(vec!["sends".into(), sends.to_string(), balance]);
    t.row(vec!["delivered".into(), delivered.to_string(), String::new()]);
    t.row(vec!["drops".into(), (loss + cut).to_string(), format!("{loss} loss, {cut} cut")]);
    for name in ["retries", "timeouts", "heartbeats", "installs", "stale_epoch_rejects"] {
        t.row(vec![
            name.into(),
            counter(metrics, &format!("net.{name}")).to_string(),
            String::new(),
        ]);
    }
    t.row(vec![
        "recoveries".into(),
        counter(metrics, "net.recoveries").to_string(),
        format!(
            "{} repairs, {} rejected, {} LP follow-ups",
            counter(metrics, "net.repairs"),
            counter(metrics, "net.repairs_rejected"),
            counter(metrics, "net.lp_followups")
        ),
    ]);
    let asends = counter(metrics, "net.alert_sends");
    if asends > 0 {
        let adel = counter(metrics, "net.alert_delivered");
        let adrop = counter(metrics, "net.alert_drops");
        let ab = if asends == adel + adrop {
            "balanced".to_string()
        } else {
            format!("UNBALANCED: {adel} delivered + {adrop} dropped")
        };
        t.row(vec!["alert_sends".into(), asends.to_string(), ab]);
        t.row(vec![
            "alerts_forwarded".into(),
            counter(metrics, "net.alerts_forwarded").to_string(),
            format!("over {adel} delivered reports"),
        ]);
    }
    Some(t)
}

/// Hot-reload accounting (`reload.*`, the PR 8 counters) from the
/// metrics snapshot. `None` when the run never re-solved a manifest.
pub fn reload_table(metrics: &Json) -> Option<Table> {
    let resolves = counter(metrics, "reload.resolves");
    if resolves == 0 {
        return None;
    }
    let swaps = counter(metrics, "reload.swaps");
    let rejected = counter(metrics, "reload.rejected");
    let failed = counter(metrics, "reload.solve_failed");
    let us = counter(metrics, "reload.resolve_us");
    let mut t = Table::new("live reconfiguration (reload.*)", &["metric", "value", "note"]);
    t.row(vec![
        "resolves".into(),
        resolves.to_string(),
        format!("{:.1} ms avg", us as f64 / 1e3 / resolves as f64),
    ]);
    t.row(vec!["swaps".into(), swaps.to_string(), String::new()]);
    t.row(vec!["rejected".into(), rejected.to_string(), "failed validation, kept serving".into()]);
    t.row(vec!["solve_failed".into(), failed.to_string(), String::new()]);
    Some(t)
}

/// Alert-plane accounting (`alert.*`, mirrored from the pipeline) from
/// the metrics snapshot. `None` when no structured alert was emitted.
pub fn alerts_table(metrics: &Json) -> Option<Table> {
    let emitted = counter(metrics, "alert.emitted");
    if emitted == 0 {
        return None;
    }
    let written = counter(metrics, "alert.written");
    let deduped = counter(metrics, "alert.deduped");
    let dropped = counter(metrics, "alert.dropped_ratelimit");
    let mut t = Table::new("alert plane (alert.*)", &["metric", "value", "note"]);
    let balance = if emitted == written + deduped + dropped {
        "balanced".to_string()
    } else {
        format!("UNBALANCED: {written} written + {deduped} deduped + {dropped} dropped")
    };
    t.row(vec!["emitted".into(), emitted.to_string(), balance]);
    t.row(vec!["written".into(), written.to_string(), String::new()]);
    t.row(vec!["deduped".into(), deduped.to_string(), "suppression window".into()]);
    t.row(vec!["dropped_ratelimit".into(), dropped.to_string(), "token bucket".into()]);
    Some(t)
}

/// Emission-path latency from the `alert.emit_ns` histogram: the
/// count/sum pair gives the mean, the exported quantiles the tail.
/// `None` when the histogram never observed an emission.
pub fn alert_latency_table(metrics: &Json) -> Option<Table> {
    let count = hist_field(metrics, "alert.emit_ns", "count");
    if count <= 0.0 {
        return None;
    }
    let sum = hist_field(metrics, "alert.emit_ns", "sum");
    let mut t = Table::new(
        "alert emission latency (alert.emit_ns)",
        &["emits", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "total_ms"],
    );
    t.row(vec![
        format!("{count:.0}"),
        format!("{:.0}", sum / count),
        format!("{:.0}", hist_field(metrics, "alert.emit_ns", "p50")),
        format!("{:.0}", hist_field(metrics, "alert.emit_ns", "p95")),
        format!("{:.0}", hist_field(metrics, "alert.emit_ns", "p99")),
        format!("{:.3}", sum / 1e6),
    ]);
    Some(t)
}

/// Render the span forest as a Chrome-trace / Perfetto document
/// (`chrome://tracing` "JSON array" format; durations in microseconds).
pub fn chrome_trace(j: &Journal) -> String {
    let mut out = String::from("[");
    for (i, s) in j.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            Json::Str(s.name.clone()).render(),
            s.tid,
            s.start_ns as f64 / 1e3,
            s.end_ns.saturating_sub(s.start_ns) as f64 / 1e3,
        );
    }
    out.push_str("\n]\n");
    out
}

/// Run the full report against on-disk artifacts; prints to stdout.
/// `metrics` and `chrome_out` are optional.
pub fn run(
    trace: &std::path::Path,
    metrics: Option<&std::path::Path>,
    top: usize,
    chrome_out: Option<&std::path::Path>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(trace)
        .map_err(|e| format!("cannot read trace {}: {e}", trace.display()))?;
    let j = parse_journal(&text);
    println!(
        "journal: {} spans ({} unclosed), {} events, {} malformed lines\n",
        j.spans.len(),
        j.unclosed,
        j.events,
        j.malformed
    );
    match phase_table(&j) {
        Some(t) => println!("{}", t.ascii()),
        None => println!("(no root `repro` span — phase breakdown unavailable)\n"),
    }
    println!("{}", hottest_table(&j, top).ascii());
    if let Some(t) = stream_shard_table(&j) {
        println!("{}", t.ascii());
    }
    if let Some(mpath) = metrics {
        let mtext = std::fs::read_to_string(mpath)
            .map_err(|e| format!("cannot read metrics {}: {e}", mpath.display()))?;
        let doc = parse_json(&mtext).map_err(|e| format!("bad metrics JSON: {e}"))?;
        println!("{}", warmstart_table(&doc).ascii());
        for t in [reload_table(&doc), cluster_table(&doc), alerts_table(&doc)].into_iter().flatten()
        {
            println!("{}", t.ascii());
        }
        if let Some(t) = alert_latency_table(&doc) {
            println!("{}", t.ascii());
        }
    }
    if let Some(cpath) = chrome_out {
        std::fs::write(cpath, chrome_trace(&j))
            .map_err(|e| format!("cannot write {}: {e}", cpath.display()))?;
        println!("chrome trace written to {}", cpath.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic journal: root `repro` (tid 0, 0–100ms) with two phase
    /// children, one of which fans out to a worker on tid 1; plus an
    /// instant event and an unclosed span.
    fn synthetic() -> &'static str {
        concat!(
            "{\"ev\":\"B\",\"name\":\"repro\",\"id\":1,\"parent\":null,\"tid\":0,\"ts\":0}\n",
            "{\"ev\":\"B\",\"name\":\"phase.fig5\",\"id\":2,\"parent\":1,\"tid\":0,\"ts\":1000000}\n",
            "{\"ev\":\"B\",\"name\":\"parallel.worker\",\"id\":3,\"parent\":2,\"tid\":1,\"ts\":2000000}\n",
            "{\"ev\":\"I\",\"name\":\"simplex.warm_diag\",\"id\":4,\"parent\":3,\"tid\":1,\"ts\":2500000}\n",
            "{\"ev\":\"E\",\"id\":3,\"tid\":1,\"ts\":42000000}\n",
            "{\"ev\":\"E\",\"id\":2,\"tid\":0,\"ts\":61000000}\n",
            "{\"ev\":\"B\",\"name\":\"phase.warm\",\"id\":5,\"parent\":1,\"tid\":0,\"ts\":61000000}\n",
            "{\"ev\":\"E\",\"id\":5,\"tid\":0,\"ts\":99000000}\n",
            "{\"ev\":\"B\",\"name\":\"orphan\",\"id\":6,\"parent\":1,\"tid\":0,\"ts\":99000000}\n",
            "{\"ev\":\"E\",\"id\":1,\"tid\":0,\"ts\":100000000}\n",
        )
    }

    #[test]
    fn journal_joins_spans_and_counts_strays() {
        let j = parse_journal(synthetic());
        assert_eq!(j.spans.len(), 5);
        assert_eq!(j.events, 1);
        assert_eq!(j.malformed, 0);
        assert_eq!(j.unclosed, 1);
        let root = j.spans.iter().find(|s| s.name == "repro").unwrap();
        assert_eq!((root.start_ns, root.end_ns), (0, 100000000));
        assert!(root.closed);
        let orphan = j.spans.iter().find(|s| s.name == "orphan").unwrap();
        assert!(!orphan.closed);
        assert_eq!(orphan.end_ns, 100000000, "unclosed spans clamp to the journal's last ts");
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let text = "not json at all\n{\"ev\":\"E\",\"id\":99,\"tid\":0,\"ts\":5}\n{\"ev\":\"B\",\"id\":1,\"tid\":0,\"ts\":1}\n";
        let j = parse_journal(text);
        // Bad syntax, close-without-open, and B-without-name all count.
        assert_eq!(j.malformed, 3);
        assert!(j.spans.is_empty());
    }

    #[test]
    fn phase_breakdown_sums_against_root() {
        let j = parse_journal(synthetic());
        let cov = phase_coverage(&j).unwrap();
        // (60µs + 38µs) / 100µs.
        assert!((cov - 0.98).abs() < 1e-9, "coverage {cov}");
        let t = phase_table(&j).unwrap();
        assert_eq!(t.rows.len(), 4); // two phases + all-phases + run-total
        assert_eq!(t.rows[0][0], "fig5");
        assert_eq!(t.rows[2][2], "98.0%");
    }

    #[test]
    fn self_time_excludes_same_thread_children_only() {
        let j = parse_journal(synthetic());
        let t = hottest_table(&j, 10);
        let row = |name: &str| {
            t.rows.iter().find(|r| r[0] == name).unwrap_or_else(|| panic!("{name} missing"))
        };
        // repro: 100ms total − (60 + 38 + 1)ms same-tid children = 1ms.
        assert_eq!(row("repro")[2], "0.001");
        assert_eq!(row("repro")[3], "0.100");
        // phase.fig5 keeps its full 60ms: its only child is on another tid.
        let fig5 = row("phase.fig5");
        assert_eq!(fig5[2], "0.060");
        assert_eq!(fig5[2], fig5[3]);
        // Sorted by self time: the 60ms phase leads, the root (1ms self,
        // everything delegated) trails.
        assert_eq!(t.rows[0][0], "phase.fig5");
        assert_eq!(t.rows[1][0], "parallel.worker");
    }

    #[test]
    fn warmstart_rates_from_metrics_doc() {
        let doc = parse_json(
            "{\"counters\":{\"simplex.warmstart_hits\":9,\"simplex.warmstart_fallbacks\":1,\
             \"simplex.warmstart_rejected\":1,\"simplex.warmstart_singular\":0,\
             \"rowgen.ctx_hits\":4,\"rowgen.solves\":8,\"rowgen.iterations_saved\":123}}",
        )
        .unwrap();
        let t = warmstart_table(&doc);
        assert_eq!(t.rows[0][3], "90.0%");
        // Fallback attribution lands in the note column.
        assert!(t.rows[0][4].contains("1 rejected"), "note: {}", t.rows[0][4]);
        assert!(t.rows[0][4].contains("0 singular"), "note: {}", t.rows[0][4]);
        // No dual runs recorded → no dual-repair row.
        assert_eq!(t.rows[1][0], "rowgen context");
        assert_eq!(t.rows[1][3], "50.0%");
        assert!(t.rows[1][4].contains("123"));
        // Empty doc: no division by zero.
        let t0 = warmstart_table(&parse_json("{}").unwrap());
        assert_eq!(t0.rows[0][3], "n/a");
    }

    #[test]
    fn warmstart_table_attributes_dual_repairs() {
        let doc = parse_json(
            "{\"counters\":{\"simplex.warmstart_hits\":11,\"simplex.warmstart_fallbacks\":0,\
             \"simplex.dual_phase_runs\":11,\"simplex.dual_repairs\":11,\
             \"simplex.dual_pivots\":42,\"simplex.dual_flips\":3}}",
        )
        .unwrap();
        let t = warmstart_table(&doc);
        assert_eq!(t.rows[1][0], "dual repair");
        assert_eq!(t.rows[1][1], "11");
        assert_eq!(t.rows[1][3], "100.0%");
        assert!(t.rows[1][4].contains("42 dual pivots"));
        assert!(t.rows[1][4].contains("3 bound flips"));
    }

    #[test]
    fn stream_shard_utilization_attributes_busy_and_idle() {
        // One streaming run 0–10ms with two shard workers: 8ms and 4ms.
        // Slot area = 2 × 10ms = 20ms, busy = 12ms → 60% busy, 8ms idle.
        let text = concat!(
            "{\"ev\":\"B\",\"name\":\"engine.stream\",\"id\":1,\"parent\":null,\"tid\":0,\"ts\":0}\n",
            "{\"ev\":\"B\",\"name\":\"parallel.worker\",\"id\":2,\"parent\":1,\"tid\":1,\"ts\":100000}\n",
            "{\"ev\":\"B\",\"name\":\"engine.stream_shard\",\"id\":3,\"parent\":2,\"tid\":1,\"ts\":1000000}\n",
            "{\"ev\":\"E\",\"id\":3,\"tid\":1,\"ts\":9000000}\n",
            "{\"ev\":\"B\",\"name\":\"engine.stream_shard\",\"id\":4,\"parent\":2,\"tid\":2,\"ts\":2000000}\n",
            "{\"ev\":\"E\",\"id\":4,\"tid\":2,\"ts\":6000000}\n",
            "{\"ev\":\"E\",\"id\":2,\"tid\":1,\"ts\":9500000}\n",
            "{\"ev\":\"E\",\"id\":1,\"tid\":0,\"ts\":10000000}\n",
        );
        let j = parse_journal(text);
        let t = stream_shard_table(&j).expect("journal has a streaming run");
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][1], "2");
        assert_eq!(t.rows[0][2], "0.010");
        assert_eq!(t.rows[0][3], "0.012");
        assert_eq!(t.rows[0][4], "0.008");
        assert_eq!(t.rows[0][5], "60.0%");
        // A journal without streaming runs yields no table.
        assert!(stream_shard_table(&parse_journal(synthetic())).is_none());
    }

    #[test]
    fn cluster_table_balances_and_surfaces_alert_forwarding() {
        let doc = parse_json(
            "{\"counters\":{\"net.sends\":100,\"net.delivered\":90,\"net.drops_loss\":7,\
             \"net.drops_cut\":3,\"net.retries\":5,\"net.heartbeats\":60,\"net.installs\":8,\
             \"net.alert_sends\":20,\"net.alert_delivered\":18,\"net.alert_drops\":2,\
             \"net.alerts_forwarded\":37}}",
        )
        .unwrap();
        let t = cluster_table(&doc).expect("sends > 0 yields a table");
        assert_eq!(t.rows[0][2], "balanced");
        let alert_row = t.rows.iter().find(|r| r[0] == "alert_sends").unwrap();
        assert_eq!(alert_row[1], "20");
        assert_eq!(alert_row[2], "balanced");
        assert!(t.rows.iter().any(|r| r[0] == "alerts_forwarded" && r[1] == "37"));

        // An unbalanced snapshot says so instead of hiding it.
        let bad = parse_json("{\"counters\":{\"net.sends\":10,\"net.delivered\":7}}").unwrap();
        let t = cluster_table(&bad).unwrap();
        assert!(t.rows[0][2].starts_with("UNBALANCED"), "note: {}", t.rows[0][2]);
        // No cluster traffic → no table.
        assert!(cluster_table(&parse_json("{}").unwrap()).is_none());
    }

    #[test]
    fn reload_table_reports_resolve_attribution() {
        let doc = parse_json(
            "{\"counters\":{\"reload.resolves\":4,\"reload.swaps\":3,\"reload.rejected\":1,\
             \"reload.solve_failed\":0,\"reload.resolve_us\":8000}}",
        )
        .unwrap();
        let t = reload_table(&doc).expect("resolves > 0 yields a table");
        assert_eq!(t.rows[0][1], "4");
        assert_eq!(t.rows[0][2], "2.0 ms avg");
        assert!(t.rows.iter().any(|r| r[0] == "swaps" && r[1] == "3"));
        assert!(reload_table(&parse_json("{}").unwrap()).is_none());
    }

    #[test]
    fn alerts_tables_consume_counters_and_histogram_count_sum() {
        let doc = parse_json(
            "{\"counters\":{\"alert.emitted\":100,\"alert.written\":70,\"alert.deduped\":20,\
             \"alert.dropped_ratelimit\":10},\
             \"histograms\":{\"alert.emit_ns\":{\"count\":100,\"sum\":25000,\
             \"p50\":200,\"p95\":450,\"p99\":700}}}",
        )
        .unwrap();
        let t = alerts_table(&doc).expect("emitted > 0 yields a table");
        assert_eq!(t.rows[0][2], "balanced");
        assert!(t.rows.iter().any(|r| r[0] == "dropped_ratelimit" && r[1] == "10"));
        let lat = alert_latency_table(&doc).expect("histogram observed emissions");
        // mean = sum/count: the count/sum pair json.rs exports.
        assert_eq!(lat.rows[0][1], "250");
        assert_eq!(lat.rows[0][3], "450");
        assert_eq!(lat.rows[0][5], "0.025");

        let bad = parse_json("{\"counters\":{\"alert.emitted\":5,\"alert.written\":4}}").unwrap();
        assert!(alerts_table(&bad).unwrap().rows[0][2].starts_with("UNBALANCED"));
        assert!(alerts_table(&parse_json("{}").unwrap()).is_none());
        assert!(alert_latency_table(&parse_json("{}").unwrap()).is_none());
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_span() {
        let j = parse_journal(synthetic());
        let text = chrome_trace(&j);
        let doc = parse_json(&text).expect("chrome trace must be valid JSON");
        match doc {
            Json::Arr(items) => {
                assert_eq!(items.len(), 5);
                for it in &items {
                    assert_eq!(it.get("ph").and_then(Json::as_str), Some("X"));
                    assert!(it.get("dur").and_then(Json::as_f64).is_some());
                }
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
