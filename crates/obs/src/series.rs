//! Named time series keyed on an explicit clock.
//!
//! A network-wide deployment is a time-varying system: coverage during a
//! failure epoch, per-epoch FPL regret, simplex iterations across
//! warm-started re-solves. Counters and gauges collapse that structure
//! into a final number; a [`Series`] keeps the trajectory.
//!
//! The x-axis is whatever clock the caller passes — the resilience
//! subsystem uses the replay-fraction clock (the same one
//! `resilience::FailureTimeline` runs on), the online game uses the
//! epoch index, the LP layer uses the re-solve index. Points are
//! recorded in call order and exported as one long CSV
//! (`series,t,value`), deterministic given deterministic callers.
//!
//! Collection piggybacks on the metrics gate ([`crate::enabled`]):
//! instrumentation sites guard with it, so a disabled run pays one
//! relaxed atomic load per *region*, exactly like the counter layer.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// One named time series: `(t, value)` points in record order.
#[derive(Debug, Default)]
pub struct Series {
    points: Mutex<Vec<(f64, f64)>>,
}

impl Series {
    /// Append one sample. Takes the series' internal lock — record per
    /// epoch/solve/event, not per packet.
    pub fn record(&self, t: f64, value: f64) {
        self.points.lock().unwrap_or_else(|e| e.into_inner()).push((t, value));
    }

    /// Copy of all points recorded so far.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.points.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    pub fn len(&self) -> usize {
        self.points.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.points.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Arc<Series>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Arc<Series>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Fetch-or-create the named series. Resolve the handle once per
/// run/solve; the handle is an `Arc` and safe to record from scoped
/// threads.
pub fn series(name: &str) -> Arc<Series> {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// One-shot convenience for cold call sites: fetch and record.
pub fn record_series(name: &str, t: f64, value: f64) {
    series(name).record(t, value);
}

/// Point-in-time copy of every registered series, in name order.
pub fn series_snapshot() -> Vec<(String, Vec<(f64, f64)>)> {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.iter().map(|(name, s)| (name.clone(), s.points())).collect()
}

/// Drop every point from every registered series (tests, repeated runs).
pub fn reset_series() {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    for s in map.values() {
        s.clear();
    }
}

/// Render a snapshot as CSV: `series,t,value`, one row per point, series
/// in name order, points in record order. Non-finite samples export as
/// empty cells (CSV has no NaN literal either).
pub fn series_to_csv(snap: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = String::from("series,t,value\n");
    let cell = |v: f64| if v.is_finite() { format!("{v:?}") } else { String::new() };
    for (name, points) in snap {
        let quoted = if name.contains(',') || name.contains('"') {
            format!("\"{}\"", name.replace('"', "\"\""))
        } else {
            name.clone()
        };
        for &(t, v) in points {
            let _ = writeln!(out, "{quoted},{},{}", cell(t), cell(v));
        }
    }
    out
}

/// Write the current snapshot of every non-empty series to `path` as CSV.
/// Returns `false` (and writes nothing) when no series has any points.
pub fn write_series_csv(path: impl AsRef<Path>) -> std::io::Result<bool> {
    let snap: Vec<_> = series_snapshot().into_iter().filter(|(_, pts)| !pts.is_empty()).collect();
    if snap.is_empty() {
        return Ok(false);
    }
    std::fs::write(path, series_to_csv(&snap))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_in_order() {
        let s = series("test.series.basic");
        s.clear();
        s.record(0.0, 1.0);
        s.record(0.5, 0.25);
        series("test.series.basic").record(1.0, 0.75);
        assert_eq!(s.points(), vec![(0.0, 1.0), (0.5, 0.25), (1.0, 0.75)]);
        assert!(Arc::ptr_eq(&s, &series("test.series.basic")));
    }

    #[test]
    fn csv_renders_rows_and_escapes() {
        let snap = vec![
            ("a,b".to_string(), vec![(0.0, 1.0)]),
            ("plain".to_string(), vec![(0.25, f64::NAN), (0.5, 2.0)]),
        ];
        let csv = series_to_csv(&snap);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,t,value");
        assert_eq!(lines[1], "\"a,b\",0.0,1.0");
        assert_eq!(lines[2], "plain,0.25,");
        assert_eq!(lines[3], "plain,0.5,2.0");
    }

    #[test]
    fn reset_clears_points_but_keeps_names() {
        let s = series("test.series.reset");
        s.record(1.0, 1.0);
        reset_series();
        assert!(s.is_empty());
        assert!(series_snapshot().iter().any(|(n, _)| n == "test.series.reset"));
    }
}
