/root/repo/target/debug/examples/nids_enterprise-c88875cf4bf20384.d: examples/nids_enterprise.rs

/root/repo/target/debug/examples/nids_enterprise-c88875cf4bf20384: examples/nids_enterprise.rs

examples/nids_enterprise.rs:
