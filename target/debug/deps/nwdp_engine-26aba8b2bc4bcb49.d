/root/repo/target/debug/deps/nwdp_engine-26aba8b2bc4bcb49.d: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

/root/repo/target/debug/deps/nwdp_engine-26aba8b2bc4bcb49: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

crates/engine/src/lib.rs:
crates/engine/src/ac.rs:
crates/engine/src/conn.rs:
crates/engine/src/cost.rs:
crates/engine/src/engine.rs:
crates/engine/src/modules.rs:
crates/engine/src/netwide.rs:
