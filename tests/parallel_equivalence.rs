//! The parallel execution layer must be invisible in the results: every
//! fan-out (rounding trials, per-node engine replay, FPL oracle solves)
//! merges in input order with per-item derived seeds, so one thread and
//! many threads produce bit-identical alerts, objectives, and manifests.

use nwdp::core::parallel;
use nwdp::prelude::*;

/// Run `f` under a 1-thread and a 4-thread override and return both results.
fn both<R>(f: impl Fn() -> R) -> (R, R) {
    let serial = parallel::with_threads(1, &f);
    let parallel_ = parallel::with_threads(4, &f);
    (serial, parallel_)
}

#[test]
fn nids_replay_identical_across_thread_counts() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());

    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &assignment.d);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(3000, 17));
    let h = KeyedHasher::with_key(5);

    let (s, p) = both(|| {
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, h).unwrap()
    });
    assert_eq!(s.alerts, p.alerts, "coordinated alerts must not depend on thread count");
    for (a, b) in s.per_node.iter().zip(&p.per_node) {
        assert_eq!(a.cpu_cycles, b.cpu_cycles);
        assert_eq!(a.mem_peak, b.mem_peak);
        assert_eq!(a.alerts, b.alerts);
    }

    let (se, pe) = both(|| run_edge_only(&dep, &trace, h).unwrap());
    assert_eq!(se.alerts, pe.alerts, "edge-only alerts must not depend on thread count");
}

/// The streaming sharded data plane must be bit-identical to the batch
/// replay on the same seed: same alerts and the same full `RunStats` on
/// every node, at 1 and 4 threads and across shard counts (ISSUE 7).
#[test]
fn streaming_replay_identical_to_batch() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());

    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &assignment.d);
    let trace_cfg = TraceConfig::new(3000, 17);
    let trace = generate_trace(&topo, &tm, &trace_cfg);
    let h = KeyedHasher::with_key(5);

    let batch =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, h).unwrap();

    for shards in [1usize, 3, 4] {
        let (s, p) = both(|| {
            run_coordinated_stream(
                &dep,
                &manifest,
                &paths,
                || SessionStream::new(&topo, &tm, &trace_cfg),
                Placement::EventEngine,
                h,
                shards,
            )
            .unwrap()
        });
        for (which, stream) in [("1 thread", &s), ("4 threads", &p)] {
            assert_eq!(
                stream.alerts, batch.alerts,
                "stream alerts diverged from batch ({shards} shards, {which})"
            );
            assert_eq!(stream.per_node.len(), batch.per_node.len());
            for (a, b) in stream.per_node.iter().zip(&batch.per_node) {
                let ctx = format!("node {} ({shards} shards, {which})", a.node.0);
                assert_eq!(a.packets, b.packets, "packets, {ctx}");
                assert_eq!(a.connections, b.connections, "connections, {ctx}");
                assert_eq!(a.cpu_cycles, b.cpu_cycles, "cpu_cycles, {ctx}");
                assert_eq!(a.mem_peak, b.mem_peak, "mem_peak, {ctx}");
                assert_eq!(a.fastpath_skipped, b.fastpath_skipped, "fastpath, {ctx}");
                assert_eq!(a.range_checks, b.range_checks, "range_checks, {ctx}");
                assert_eq!(a.range_hits, b.range_hits, "range_hits, {ctx}");
                assert_eq!(a.per_module_cpu, b.per_module_cpu, "per_module_cpu, {ctx}");
                assert_eq!(a.alerts, b.alerts, "alerts, {ctx}");
            }
        }
    }
}

/// The closed reconfiguration loop must be invisible when it never
/// swaps: with `Sabotage::Every` the validation gate rejects every
/// candidate, the original manifest serves end to end, and the run is
/// bit-identical to the plain streaming data plane — at 1 and 4 threads
/// and across shard counts (ISSUE 8). This pins the reload runner's
/// epoch-chunked fan-out (persistent workers, boundary pauses, observed-
/// mix counting) as pure plumbing with zero effect on results.
#[test]
fn reload_with_every_swap_rejected_identical_to_stream() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());

    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &assignment.d);
    let trace_cfg = TraceConfig::new(2000, 17);
    let h = KeyedHasher::with_key(5);

    for shards in [1usize, 3] {
        let stream = run_coordinated_stream(
            &dep,
            &manifest,
            &paths,
            || SessionStream::new(&topo, &tm, &trace_cfg),
            Placement::EventEngine,
            h,
            shards,
        )
        .unwrap();
        let (s, p) = both(|| {
            let reload_cfg = ReloadConfig {
                epochs: 4,
                total_sessions: 2000,
                caps: &cfg.caps,
                redundancy: 1.0,
                max_load: 1.0,
                blend: 0.5,
                sabotage: Sabotage::Every,
            };
            run_coordinated_stream_reload(
                &dep,
                &manifest,
                &paths,
                || SessionStream::new(&topo, &tm, &trace_cfg),
                Placement::EventEngine,
                h,
                shards,
                &reload_cfg,
            )
            .unwrap()
        });
        for (which, reload) in [("1 thread", &s), ("4 threads", &p)] {
            assert_eq!(reload.swaps(), 0, "Sabotage::Every must reject everything ({which})");
            assert_eq!(reload.rejected(), 3, "{which}");
            assert!(reload.coverage_floor() > 1.0 - 1e-9, "{which}");
            assert_eq!(
                reload.run.alerts, stream.alerts,
                "reload alerts diverged from stream ({shards} shards, {which})"
            );
            for (a, b) in reload.run.per_node.iter().zip(&stream.per_node) {
                let ctx = format!("node {} ({shards} shards, {which})", a.node.0);
                assert_eq!(a.packets, b.packets, "packets, {ctx}");
                assert_eq!(a.connections, b.connections, "connections, {ctx}");
                assert_eq!(a.cpu_cycles, b.cpu_cycles, "cpu_cycles, {ctx}");
                assert_eq!(a.mem_peak, b.mem_peak, "mem_peak, {ctx}");
                assert_eq!(a.fastpath_skipped, b.fastpath_skipped, "fastpath, {ctx}");
                assert_eq!(a.range_checks, b.range_checks, "range_checks, {ctx}");
                assert_eq!(a.range_hits, b.range_hits, "range_hits, {ctx}");
                assert_eq!(a.per_module_cpu, b.per_module_cpu, "per_module_cpu, {ctx}");
                assert_eq!(a.alerts, b.alerts, "alerts, {ctx}");
            }
        }
    }
}

/// The distributed control plane is a discrete-event replay: transport
/// drops, delays, retry jitter, and repair decisions all draw from
/// driver-serial RNG in event order, and same-instant node batches merge
/// in node order — so a faulty, lossy, partitioned run is bit-identical
/// (full `ClusterRun` equality, including the delivery-schedule
/// fingerprint) at 1 and 4 threads (ISSUE 9).
#[test]
fn cluster_convergence_identical_across_thread_counts() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &assignment.d);

    let mut plan = FaultPlan::lossy(0.1, 0.001, 0.004, 19);
    plan.crashes.push((NodeId(3), 0.37));
    plan.partitions.push(Partition { nodes: vec![NodeId(7)], from: 0.5, until: 0.75 });
    let mut ccfg = ClusterConfig::default();
    ccfg.health.miss_threshold = 4;

    let (s, p) = both(|| run_cluster(&dep, &manifest, &cfg.caps, &plan, &ccfg).unwrap());
    assert_eq!(s, p, "cluster run must not depend on thread count");
    assert!(s.final_epoch >= 2, "the crash must force at least one repair epoch");
    assert!(s.stats.delivered > 0 && s.stats.drops_loss > 0);
}

#[test]
fn nips_rounding_identical_across_thread_counts() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::uniform_001(6, paths.all_pairs().count(), 23);
    let inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, 6, 0.25, rates);
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
    let opts = RoundingOpts {
        strategy: Strategy::GreedyLpResolve,
        iterations: 6,
        seed: 41,
        ..Default::default()
    };

    let (s, p) = both(|| round_best_of(&inst, &relax, &opts).unwrap());
    assert_eq!(s.objective.to_bits(), p.objective.to_bits(), "objective must be bit-identical");
    assert_eq!(s.e, p.e);
    assert_eq!(s.d, p.d);
}

#[test]
fn manifests_identical_across_thread_counts() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });

    let (s, p) = both(|| {
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let manifest = generate_manifests(&dep, &a.d);
        (0..dep.num_nodes)
            .map(|j| nwdp::core::nids::node_manifest_to_text(&manifest, NodeId(j)))
            .collect::<Vec<String>>()
    });
    assert_eq!(s, p, "serialized manifests must not depend on thread count");
}

#[test]
fn fpl_identical_across_thread_counts() {
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::zeros(4, paths.all_pairs().count());
    let mut inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, 4, 1.0, rates);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];
    let cfg = FplConfig { epochs: 12, seed: 6, track_ftl: true, ..Default::default() };

    let (s, p) = both(|| {
        let mut adv = StochasticUniform::new(4, inst.paths.len(), 0.01, 19);
        run_fpl(&inst, &mut adv, &cfg).expect("valid config")
    });
    assert_eq!(s.fpl_value, p.fpl_value);
    assert_eq!(s.ftl_value, p.ftl_value);
    assert_eq!(s.static_prefix_value, p.static_prefix_value);
    assert_eq!(s.normalized_regret, p.normalized_regret);
}
