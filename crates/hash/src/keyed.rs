//! Keyed coordination hashing.
//!
//! §3.2 of the paper: "administrators can use private keyed hash functions
//! to prevent adversaries from evading the hash checks". A [`KeyedHasher`]
//! folds a 64-bit secret into the Bob hash seed words so that an adversary
//! who does not know the key cannot craft headers that land in a chosen
//! node's hash range.

use crate::key::{flow_key_words, FiveTuple, FlowKeyKind};
use crate::lookup3::hashword2;
use crate::range::unit;

/// A seeded/keyed hash function from flow keys to the unit interval.
///
/// Two hashers with different keys behave as independent hash functions;
/// with the same key they are identical (nodes across the network must share
/// the key so that a connection hashes identically everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyedHasher {
    key: u64,
}

impl KeyedHasher {
    /// An unkeyed hasher (key 0) — adequate when adversarial evasion of the
    /// sampling checks is not a concern.
    pub fn unkeyed() -> Self {
        KeyedHasher { key: 0 }
    }

    pub fn with_key(key: u64) -> Self {
        KeyedHasher { key }
    }

    pub fn key(&self) -> u64 {
        self.key
    }

    /// 32-bit keyed hash of the selected header fields.
    pub fn hash32(&self, t: &FiveTuple, kind: FlowKeyKind) -> u32 {
        let (words, n) = flow_key_words(t, kind);
        let (c, _b) = hashword2(&words[..n], self.key as u32, (self.key >> 32) as u32);
        c
    }

    /// Keyed hash of the selected header fields mapped to `[0, 1)`.
    ///
    /// This is the `HASH(pkt, i)` of the paper's Fig. 3.
    pub fn unit_hash(&self, t: &FiveTuple, kind: FlowKeyKind) -> f64 {
        unit(self.hash32(t, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> FiveTuple {
        FiveTuple::new(0x0a000000 + i, 0xc0a80107, 40000 + (i as u16 % 1000), 80, 6)
    }

    #[test]
    fn same_key_same_hash() {
        let h1 = KeyedHasher::with_key(0xfeed_beef_dead_cafe);
        let h2 = KeyedHasher::with_key(0xfeed_beef_dead_cafe);
        assert_eq!(h1.hash32(&t(1), FlowKeyKind::UniFlow), h2.hash32(&t(1), FlowKeyKind::UniFlow));
    }

    #[test]
    fn different_keys_differ() {
        let h1 = KeyedHasher::with_key(1);
        let h2 = KeyedHasher::with_key(2);
        // With overwhelming probability over 64 samples at least one differs.
        let differs = (0..64).any(|i| {
            h1.hash32(&t(i), FlowKeyKind::UniFlow) != h2.hash32(&t(i), FlowKeyKind::UniFlow)
        });
        assert!(differs);
    }

    #[test]
    fn bidirectional_unit_hash_consistent() {
        let h = KeyedHasher::with_key(99);
        let f = t(7);
        assert_eq!(
            h.unit_hash(&f, FlowKeyKind::BiSession),
            h.unit_hash(&f.reversed(), FlowKeyKind::BiSession)
        );
    }

    #[test]
    fn unit_hash_roughly_uniform() {
        // Chi-square over 16 buckets, 8192 distinct flows; threshold is the
        // 99.9% quantile of chi2(15) ≈ 37.7.
        let h = KeyedHasher::with_key(0x1234_5678);
        let mut buckets = [0usize; 16];
        let n = 8192;
        for i in 0..n {
            let u = h.unit_hash(&t(i), FlowKeyKind::UniFlow);
            buckets[(u * 16.0) as usize] += 1;
        }
        let expect = n as f64 / 16.0;
        let chi2: f64 = buckets
            .iter()
            .map(|&o| {
                let d = o as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi2 < 37.7, "hash output not uniform: chi2 = {chi2}");
    }
}
