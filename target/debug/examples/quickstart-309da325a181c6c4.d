/root/repo/target/debug/examples/quickstart-309da325a181c6c4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-309da325a181c6c4: examples/quickstart.rs

examples/quickstart.rs:
