//! Hash-range arithmetic over the unit interval.
//!
//! The optimization output assigns each node a sub-range of `[0, 1)` per
//! coordination unit (Fig. 2 of the paper); a node analyzes a packet iff the
//! packet's unit-interval hash falls inside its range. With the
//! redundancy-`r` extension (§2.5) the covered space is `[0, r)` and a
//! node's range *wraps around* the unit interval, so a node's assignment is
//! in general a set of disjoint half-open segments — a [`RangeSet`].

/// A half-open interval `[lo, hi)` within the unit interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub lo: f64,
    pub hi: f64,
}

impl Segment {
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(lo <= hi, "segment bounds out of order: [{lo}, {hi})");
        Segment { lo, hi }
    }

    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    pub fn contains(&self, u: f64) -> bool {
        self.lo <= u && u < self.hi
    }
}

/// A set of disjoint, sorted half-open segments within `[0, 1)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RangeSet {
    segments: Vec<Segment>,
}

impl RangeSet {
    /// The empty range set (node analyzes nothing).
    pub fn empty() -> Self {
        RangeSet { segments: Vec::new() }
    }

    /// A single contiguous range `[lo, hi)` with `0 <= lo <= hi <= 1`.
    pub fn interval(lo: f64, hi: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0 + 1e-12,
            "interval [{lo}, {hi}) outside the unit interval"
        );
        if hi <= lo {
            return Self::empty();
        }
        RangeSet { segments: vec![Segment::new(lo, hi.min(1.0))] }
    }

    /// A range on the *extended* space `[0, r)` used by the redundancy
    /// extension: the extended range `[lo, hi)` (with `hi - lo <= 1`) is
    /// wrapped modulo 1 into up to two unit-interval segments.
    ///
    /// Example: `wrapped(0.8, 1.3)` covers `[0.8, 1) ∪ [0, 0.3)`.
    pub fn wrapped(lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "wrapped range bounds out of order");
        assert!(hi - lo <= 1.0 + 1e-12, "wrapped range longer than the unit interval");
        if hi <= lo {
            return Self::empty();
        }
        let lo_m = lo - lo.floor();
        let len = hi - lo;
        if lo_m + len <= 1.0 + 1e-12 {
            Self::interval(lo_m, (lo_m + len).min(1.0))
        } else {
            let first = Segment::new(lo_m, 1.0);
            let second = Segment::new(0.0, lo_m + len - 1.0);
            RangeSet { segments: vec![second, first] }
        }
    }

    /// Merge another range set into this one. Panics (debug) if the sets
    /// overlap, since manifests must assign disjoint responsibilities.
    pub fn union(mut self, other: &RangeSet) -> Self {
        self.segments.extend(other.segments.iter().copied());
        // total_cmp: a NaN endpoint (degenerate manifest arithmetic) sorts
        // deterministically instead of panicking; the overlap debug_assert
        // below still flags such sets in debug builds.
        self.segments.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        for w in self.segments.windows(2) {
            // `>` (not a negated `<=`) so non-finite endpoints, which
            // compare false either way, don't register as overlaps.
            let overlaps = w[0].hi > w[1].lo + 1e-12;
            debug_assert!(
                !overlaps,
                "overlapping segments in range set: {:?} and {:?}",
                w[0], w[1]
            );
        }
        self
    }

    /// Build a set from arbitrary segments: empties dropped, the rest
    /// sorted and coalesced where they touch exactly (abutting endpoints
    /// within 1e-12 merge into one segment, so measure is preserved).
    /// Panics (debug) when two inputs genuinely overlap.
    pub fn from_segments(mut segments: Vec<Segment>) -> Self {
        segments.retain(|s| !s.is_empty());
        segments.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
        for s in segments {
            match out.last_mut() {
                Some(prev) if s.lo <= prev.hi + 1e-12 => {
                    debug_assert!(
                        s.lo >= prev.hi - 1e-12,
                        "overlapping segments: {prev:?} and {s:?}"
                    );
                    prev.hi = prev.hi.max(s.hi);
                }
                _ => out.push(s),
            }
        }
        RangeSet { segments: out }
    }

    /// The prefix of this set (in unit-interval order) with total measure
    /// `keep`. Used by graceful degradation to shed an *exact* fraction of
    /// a responsibility: the kept prefix has measure `min(keep, measure)`,
    /// the remainder is the shed part.
    pub fn take_measure(&self, keep: f64) -> RangeSet {
        assert!(keep >= 0.0, "cannot keep a negative measure");
        let mut left = keep;
        let mut segments = Vec::with_capacity(self.segments.len());
        for s in &self.segments {
            if left <= 0.0 {
                break;
            }
            let len = s.len();
            if len <= left {
                segments.push(*s);
                left -= len;
            } else {
                segments.push(Segment::new(s.lo, s.lo + left));
                left = 0.0;
            }
        }
        RangeSet { segments }
    }

    /// Does the unit-interval point `u` fall inside this set?
    pub fn contains(&self, u: f64) -> bool {
        // Few segments (1-2 in practice): linear scan beats binary search.
        self.segments.iter().any(|s| s.contains(u))
    }

    /// Total measure of the set (the fraction of traffic this node handles).
    pub fn measure(&self) -> f64 {
        self.segments.iter().map(Segment::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(Segment::is_empty)
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }
}

/// Map a 32-bit hash to the unit interval `[0, 1)`.
#[inline]
pub fn unit(hash: u32) -> f64 {
    (hash as f64) / 4_294_967_296.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_endpoints_half_open() {
        let r = RangeSet::interval(0.25, 0.5);
        assert!(!r.contains(0.2499999));
        assert!(r.contains(0.25));
        assert!(r.contains(0.4999999));
        assert!(!r.contains(0.5));
    }

    #[test]
    fn empty_interval_is_empty() {
        assert!(RangeSet::interval(0.3, 0.3).is_empty());
        assert!(!RangeSet::interval(0.3, 0.3).contains(0.3));
    }

    #[test]
    fn wrapped_splits_across_unit_boundary() {
        let r = RangeSet::wrapped(0.8, 1.3);
        assert!(r.contains(0.9));
        assert!(r.contains(0.0));
        assert!(r.contains(0.29));
        assert!(!r.contains(0.301)); // boundary fuzzy only at f64 epsilon
        assert!(!r.contains(0.5));
        assert!((r.measure() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wrapped_without_crossing_equals_interval() {
        let w = RangeSet::wrapped(1.2, 1.5);
        let i = RangeSet::interval(0.2, 0.5);
        assert_eq!(w.segments().len(), 1);
        assert!((w.segments()[0].lo - i.segments()[0].lo).abs() < 1e-12);
        assert!((w.segments()[0].hi - i.segments()[0].hi).abs() < 1e-12);
    }

    #[test]
    fn union_of_disjoint_sets() {
        let r = RangeSet::interval(0.0, 0.2).union(&RangeSet::interval(0.5, 0.7));
        assert!(r.contains(0.1));
        assert!(!r.contains(0.3));
        assert!(r.contains(0.6));
        assert!((r.measure() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn unit_maps_full_u32_range_into_unit_interval() {
        assert_eq!(unit(0), 0.0);
        assert!(unit(u32::MAX) < 1.0);
        assert!((unit(u32::MAX / 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn full_wrap_covers_everything() {
        let r = RangeSet::wrapped(0.4, 1.4);
        assert!((r.measure() - 1.0).abs() < 1e-9);
        for i in 0..100 {
            assert!(r.contains(i as f64 / 100.0));
        }
    }

    #[test]
    fn from_segments_sorts_and_coalesces_abutting() {
        let r = RangeSet::from_segments(vec![
            Segment::new(0.5, 0.7),
            Segment::new(0.1, 0.3),
            Segment::new(0.3, 0.5),
            Segment::new(0.9, 0.9), // empty, dropped
        ]);
        assert_eq!(r.segments().len(), 1);
        assert!((r.measure() - 0.6).abs() < 1e-12);
        assert!(r.contains(0.1) && r.contains(0.699));
        assert!(!r.contains(0.7));
    }

    #[test]
    fn take_measure_keeps_exact_prefix() {
        let r = RangeSet::interval(0.0, 0.2).union(&RangeSet::interval(0.5, 0.8));
        let kept = r.take_measure(0.3);
        assert!((kept.measure() - 0.3).abs() < 1e-12);
        assert!(kept.contains(0.1));
        assert!(kept.contains(0.55));
        assert!(!kept.contains(0.65));
        // Keeping more than everything is the identity; keeping zero is empty.
        assert!((r.take_measure(2.0).measure() - r.measure()).abs() < 1e-12);
        assert!(r.take_measure(0.0).is_empty());
    }

    /// Regression: a NaN segment endpoint used to trip
    /// `partial_cmp(..).expect("NaN in range set")` inside `union`; the
    /// total_cmp sort now handles it deterministically.
    #[test]
    fn union_with_nan_endpoint_does_not_panic() {
        let nan = RangeSet { segments: vec![Segment { lo: f64::NAN, hi: f64::NAN }] };
        let r = RangeSet::interval(0.1, 0.2).union(&nan);
        // The finite segment survives and still answers queries.
        assert!(r.contains(0.15));
        assert!(!r.contains(0.5));
    }
}
