/root/repo/target/debug/deps/rand-1dab18dc8fffcf50.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs Cargo.toml

/root/repo/target/debug/deps/librand-1dab18dc8fffcf50.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs Cargo.toml

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
