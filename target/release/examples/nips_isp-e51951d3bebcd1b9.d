/root/repo/target/release/examples/nips_isp-e51951d3bebcd1b9.d: examples/nips_isp.rs

/root/repo/target/release/examples/nips_isp-e51951d3bebcd1b9: examples/nips_isp.rs

examples/nips_isp.rs:
