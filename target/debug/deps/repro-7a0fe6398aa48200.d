/root/repo/target/debug/deps/repro-7a0fe6398aa48200.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-7a0fe6398aa48200: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
