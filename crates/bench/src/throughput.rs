//! Streaming data-plane throughput (ISSUE 7).
//!
//! Measures the sessions/sec and per-packet latency of the streaming
//! sharded engine ([`nwdp_engine::run_coordinated_stream`]) against the
//! materialize-then-replay batch path on the standard Internet2 / 9-module
//! deployment. Three passes:
//!
//! 1. **batch** — `generate_trace` + `run_coordinated`, timed end to end
//!    (the trace build is part of the batch cost; the streaming path never
//!    materializes one);
//! 2. **stream** — `run_coordinated_stream` over fresh `SessionStream`s,
//!    timed with metrics disabled (no clock reads in the hot loop);
//! 3. **latency** — the same streaming run with metrics on, feeding the
//!    `engine.stream.pkt_ns` histogram the p50/p99 are read from.
//!
//! The batch and stream results must be bit-identical (same alerts, same
//! per-node stats) — asserted here on every bench run, not just in the
//! equivalence tests. Results go to `results/throughput.csv`, and
//! [`append_trajectory`] records the run in the repo-root
//! `BENCH_throughput.json` so the throughput trajectory across commits
//! stays visible.

use crate::output::{f2, Table};
use crate::scenario::NidsContext;
use crate::Scale;
use nwdp_core::parallel;
use nwdp_engine::{
    pkt_latency_bounds, run_coordinated, run_coordinated_stream, stream_shards, Placement,
};
use nwdp_hash::KeyedHasher;
use nwdp_obs as obs;
use nwdp_traffic::{generate_trace, SessionStream, TraceConfig};
use std::path::Path;
use std::time::Instant;

/// One throughput measurement.
#[derive(Debug, Clone)]
pub struct ThroughputRun {
    pub quick: bool,
    pub sessions: usize,
    pub shards: usize,
    pub threads: usize,
    /// Streaming wall time (metrics off) and derived rates.
    pub wall_s: f64,
    pub sessions_per_sec: f64,
    /// Packets processed per second, summed over every on-path node (one
    /// packet traversing k nodes counts k times, as in Figs 6-8).
    pub packets_per_sec: f64,
    /// Per-packet processing latency quantiles (ns) from the metrics-on
    /// pass.
    pub p50_pkt_ns: f64,
    pub p99_pkt_ns: f64,
    /// Batch comparator: trace materialization + `run_coordinated`.
    pub batch_wall_s: f64,
    pub speedup_vs_batch: f64,
    pub total_packets: u64,
}

/// Run the throughput bench at `scale`. Panics if the streaming result
/// diverges from the batch result — throughput numbers for a wrong answer
/// are worthless.
pub fn run(scale: Scale) -> ThroughputRun {
    let sessions = match scale {
        Scale::Quick => 20_000,
        Scale::Full => 100_000,
    };
    let seed = 17u64;
    let ctx = NidsContext::internet2();
    let dep = ctx.deployment(9);
    let (_assignment, manifest) = ctx.manifests(&dep);
    let cfg = TraceConfig::new(sessions, seed);
    let hasher = KeyedHasher::with_key(5);
    let shards = stream_shards();
    let threads = parallel::num_threads();

    // Pass 1: batch comparator (materialize + replay).
    let t0 = Instant::now();
    let trace = generate_trace(&ctx.topo, &ctx.tm, &cfg);
    let batch =
        run_coordinated(&dep, &manifest, &ctx.paths, &trace, Placement::EventEngine, hasher)
            .expect("batch run");
    let batch_wall_s = t0.elapsed().as_secs_f64();

    // Pass 2: streaming, metrics off so the hot loop has no clock reads.
    let was = obs::enabled();
    obs::set_enabled(false);
    let t0 = Instant::now();
    let stream = run_coordinated_stream(
        &dep,
        &manifest,
        &ctx.paths,
        || SessionStream::new(&ctx.topo, &ctx.tm, &cfg),
        Placement::EventEngine,
        hasher,
        shards,
    )
    .expect("stream run");
    let wall_s = t0.elapsed().as_secs_f64();
    obs::set_enabled(was);

    assert_identical(&batch, &stream);

    // Pass 3: metrics on, to fill the per-packet latency histogram.
    let hist = {
        obs::set_enabled(true);
        let hist = obs::histogram("engine.stream.pkt_ns", &pkt_latency_bounds());
        hist.reset();
        run_coordinated_stream(
            &dep,
            &manifest,
            &ctx.paths,
            || SessionStream::new(&ctx.topo, &ctx.tm, &cfg),
            Placement::EventEngine,
            hasher,
            shards,
        )
        .expect("latency run");
        obs::set_enabled(was);
        hist
    };

    let total_packets: u64 = stream.per_node.iter().map(|s| s.packets).sum();
    ThroughputRun {
        quick: scale == Scale::Quick,
        sessions,
        shards,
        threads,
        wall_s,
        sessions_per_sec: sessions as f64 / wall_s.max(1e-12),
        packets_per_sec: total_packets as f64 / wall_s.max(1e-12),
        p50_pkt_ns: hist.quantile(0.5),
        p99_pkt_ns: hist.quantile(0.99),
        batch_wall_s,
        speedup_vs_batch: batch_wall_s / wall_s.max(1e-12),
        total_packets,
    }
}

fn assert_identical(batch: &nwdp_engine::NetworkRun, stream: &nwdp_engine::NetworkRun) {
    assert_eq!(batch.alerts, stream.alerts, "stream alerts diverged from batch");
    assert_eq!(batch.per_node.len(), stream.per_node.len());
    for (b, s) in batch.per_node.iter().zip(&stream.per_node) {
        let n = b.node.0;
        assert_eq!(b.packets, s.packets, "node {n} packets");
        assert_eq!(b.connections, s.connections, "node {n} connections");
        assert_eq!(b.cpu_cycles, s.cpu_cycles, "node {n} cpu");
        assert_eq!(b.mem_peak, s.mem_peak, "node {n} mem peak");
        assert_eq!(b.fastpath_skipped, s.fastpath_skipped, "node {n} fast path");
        assert_eq!(b.range_checks, s.range_checks, "node {n} range checks");
        assert_eq!(b.range_hits, s.range_hits, "node {n} range hits");
        assert_eq!(b.per_module_cpu, s.per_module_cpu, "node {n} module cpu");
        assert_eq!(b.alerts, s.alerts, "node {n} alerts");
    }
}

pub fn table(r: &ThroughputRun) -> Table {
    let mut t = Table::new(
        "Streaming data plane: sessions/sec vs the batch replay (results bit-identical)",
        &[
            "sessions",
            "shards",
            "threads",
            "stream s",
            "batch s",
            "speedup",
            "sessions/s",
            "pkts/s",
            "p50 pkt ns",
            "p99 pkt ns",
        ],
    );
    t.row(vec![
        r.sessions.to_string(),
        r.shards.to_string(),
        r.threads.to_string(),
        f2(r.wall_s),
        f2(r.batch_wall_s),
        format!("{:.2}x", r.speedup_vs_batch),
        format!("{:.0}", r.sessions_per_sec),
        format!("{:.0}", r.packets_per_sec),
        format!("{:.0}", r.p50_pkt_ns),
        format!("{:.0}", r.p99_pkt_ns),
    ]);
    t
}

/// Append `r` to the trajectory file (`{"version":1,"runs":[...]}`),
/// creating it if absent. Returns the new entry's 1-based sequence number.
///
/// A file that exists but does not parse as a trajectory is **never
/// overwritten** (an earlier version silently reset `runs` to empty and the
/// next write destroyed the whole bench history): the corrupt original is
/// copied to `<path>.bak` and an `InvalidData` error names both paths, so
/// the caller can warn and skip the append.
pub fn append_trajectory(path: &Path, r: &ThroughputRun) -> std::io::Result<usize> {
    crate::output::append_trajectory(
        path,
        vec![
            ("quick", obs::Json::Bool(r.quick)),
            ("sessions", obs::Json::Num(r.sessions as f64)),
            ("shards", obs::Json::Num(r.shards as f64)),
            ("threads", obs::Json::Num(r.threads as f64)),
            ("wall_s", obs::Json::Num(r.wall_s)),
            ("sessions_per_sec", obs::Json::Num(r.sessions_per_sec)),
            ("packets_per_sec", obs::Json::Num(r.packets_per_sec)),
            ("p50_pkt_ns", obs::Json::Num(r.p50_pkt_ns)),
            ("p99_pkt_ns", obs::Json::Num(r.p99_pkt_ns)),
            ("batch_wall_s", obs::Json::Num(r.batch_wall_s)),
            ("speedup_vs_batch", obs::Json::Num(r.speedup_vs_batch)),
            ("total_packets", obs::Json::Num(r.total_packets as f64)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_appends_and_reparses() {
        let dir = std::env::temp_dir().join("nwdp_throughput_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_throughput.json");
        let _ = std::fs::remove_file(&path);
        let r = ThroughputRun {
            quick: true,
            sessions: 100,
            shards: 2,
            threads: 2,
            wall_s: 0.5,
            sessions_per_sec: 200.0,
            packets_per_sec: 4000.0,
            p50_pkt_ns: 120.0,
            p99_pkt_ns: 900.0,
            batch_wall_s: 1.0,
            speedup_vs_batch: 2.0,
            total_packets: 2000,
        };
        assert_eq!(append_trajectory(&path, &r).unwrap(), 1);
        assert_eq!(append_trajectory(&path, &r).unwrap(), 2);
        let json = obs::parse_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(json.get("version"), Some(&obs::Json::Num(1.0)));
        let Some(obs::Json::Arr(runs)) = json.get("runs") else {
            panic!("runs array missing");
        };
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("seq"), Some(&obs::Json::Num(2.0)));
        assert_eq!(runs[0].get("sessions_per_sec"), Some(&obs::Json::Num(200.0)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_trajectory_is_preserved_not_destroyed() {
        let dir = std::env::temp_dir().join("nwdp_throughput_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let r = ThroughputRun {
            quick: true,
            sessions: 100,
            shards: 1,
            threads: 1,
            wall_s: 0.5,
            sessions_per_sec: 200.0,
            packets_per_sec: 4000.0,
            p50_pkt_ns: 120.0,
            p99_pkt_ns: 900.0,
            batch_wall_s: 1.0,
            speedup_vs_batch: 2.0,
            total_packets: 2000,
        };
        // Unparseable JSON and parseable-but-wrong-shape both refuse the
        // append, keep the original bytes intact, and leave a .bak copy.
        for (name, garbage) in
            [("truncated.json", "{\"version\":1,\"runs\":[{\"seq\""), ("noruns.json", "{\"v\":2}")]
        {
            let path = dir.join(name);
            let bak = std::path::PathBuf::from(format!("{}.bak", path.display()));
            let _ = std::fs::remove_file(&bak);
            std::fs::write(&path, garbage).unwrap();
            let err = append_trajectory(&path, &r).expect_err("corrupt file must not append");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name}");
            assert_eq!(std::fs::read_to_string(&path).unwrap(), garbage, "{name}: original intact");
            assert_eq!(std::fs::read_to_string(&bak).unwrap(), garbage, "{name}: .bak written");
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&bak);
        }
    }
}
