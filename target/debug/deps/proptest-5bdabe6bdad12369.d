/root/repo/target/debug/deps/proptest-5bdabe6bdad12369.d: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-5bdabe6bdad12369.rmeta: crates/proptest/src/lib.rs crates/proptest/src/collection.rs crates/proptest/src/strategy.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
