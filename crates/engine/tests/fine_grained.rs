//! §2.5 fine-grained coordination extension: connections whose interested
//! modules only consume connection-level events (Scan, SYNFlood) are
//! tracked in lightweight records. Detection must be unchanged; ingress
//! memory must drop.

use nwdp_core::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::{build_units, AnalysisClass};
use nwdp_engine::{CoordContext, Engine, Placement, RunStats};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{internet2, NodeId, PathDb};
use nwdp_traffic::{generate_trace, NetTrace, TraceConfig, TrafficMatrix};

fn run_network(fine_grained: bool, trace: &NetTrace) -> Vec<RunStats> {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = nwdp_traffic::VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let a = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &a.d);
    let names: Vec<String> = dep.classes.iter().map(|c| c.name.clone()).collect();
    let h = KeyedHasher::with_key(0xF1FE);
    (0..topo.num_nodes())
        .map(|j| {
            let node = NodeId(j);
            let coord = CoordContext::new(&dep, &manifest);
            let mut engine =
                Engine::new(node, Placement::EventEngine, &names, Some(coord), h).unwrap();
            engine.set_fine_grained(fine_grained);
            for s in trace.onpath_sessions(&paths, node) {
                engine.process_session(s);
            }
            engine.stats()
        })
        .collect()
}

#[test]
fn fine_grained_preserves_detection_and_cuts_memory() {
    let topo = internet2();
    let tm = TrafficMatrix::gravity(&topo);
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(4000, 99));

    let base = run_network(false, &trace);
    let fine = run_network(true, &trace);

    // Identical alerts network-wide.
    let alerts_base: std::collections::BTreeSet<_> =
        base.iter().flat_map(|s| s.alerts.iter().cloned()).collect();
    let alerts_fine: std::collections::BTreeSet<_> =
        fine.iter().flat_map(|s| s.alerts.iter().cloned()).collect();
    assert_eq!(alerts_base, alerts_fine, "fine-grained mode must not change detection");

    // Strictly less total memory, and no node worse off.
    let mem_base: u64 = base.iter().map(|s| s.mem_peak).sum();
    let mem_fine: u64 = fine.iter().map(|s| s.mem_peak).sum();
    assert!(mem_fine < mem_base, "lightweight records must save memory: {mem_fine} vs {mem_base}");
    for (b, f) in base.iter().zip(&fine) {
        assert!(f.mem_peak <= b.mem_peak, "node {:?} regressed", b.node);
    }
    // CPU also drops (mid-stream packets of light connections skip the
    // module loop).
    let cpu_base: u64 = base.iter().map(|s| s.cpu_cycles).sum();
    let cpu_fine: u64 = fine.iter().map(|s| s.cpu_cycles).sum();
    assert!(cpu_fine <= cpu_base);
}
