//! Aggregate volume model.
//!
//! §3.4 of the paper: "we start with a baseline of 8 million flows and 40
//! million packets (per 5 minute interval) for Internet2 based on publicly
//! available estimates. For the other networks we scale the total volume
//! linearly as a function of network size."

use crate::matrix::TrafficMatrix;
use nwdp_topo::{NodeId, Topology};

/// Internet2 baseline: flows per 5-minute measurement interval.
pub const INTERNET2_FLOWS: f64 = 8_000_000.0;
/// Internet2 baseline: packets per 5-minute measurement interval.
pub const INTERNET2_PKTS: f64 = 40_000_000.0;
/// Reference size for linear scaling (Internet2 PoP count).
pub const INTERNET2_NODES: f64 = 11.0;

/// Total flow/packet volume per measurement interval.
#[derive(Debug, Clone, Copy)]
pub struct VolumeModel {
    pub flows: f64,
    pub pkts: f64,
    pub interval_secs: f64,
}

impl VolumeModel {
    /// The Internet2 published baseline.
    pub fn internet2_baseline() -> Self {
        VolumeModel { flows: INTERNET2_FLOWS, pkts: INTERNET2_PKTS, interval_secs: 300.0 }
    }

    /// Baseline scaled linearly with topology size (paper §3.4).
    pub fn scaled_for(topo: &Topology) -> Self {
        let scale = topo.num_nodes() as f64 / INTERNET2_NODES;
        VolumeModel {
            flows: INTERNET2_FLOWS * scale,
            pkts: INTERNET2_PKTS * scale,
            interval_secs: 300.0,
        }
    }

    /// Mean packets per flow implied by the model.
    pub fn pkts_per_flow(&self) -> f64 {
        self.pkts / self.flows
    }

    /// Flow volume on the (s, d) ingress–egress pair under `tm`.
    pub fn pair_flows(&self, tm: &TrafficMatrix, s: NodeId, d: NodeId) -> f64 {
        self.flows * tm.frac(s, d)
    }

    /// Packet volume on the (s, d) ingress–egress pair under `tm`.
    pub fn pair_pkts(&self, tm: &TrafficMatrix, s: NodeId, d: NodeId) -> f64 {
        self.pkts * tm.frac(s, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwdp_topo::{geant, internet2};

    #[test]
    fn baseline_constants() {
        let v = VolumeModel::internet2_baseline();
        assert_eq!(v.flows, 8e6);
        assert_eq!(v.pkts, 4e7);
        assert!((v.pkts_per_flow() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linear_scaling() {
        let v = VolumeModel::scaled_for(&geant());
        assert!((v.flows - 8e6 * 22.0 / 11.0).abs() < 1.0);
    }

    #[test]
    fn pair_volumes_sum_to_total() {
        let t = internet2();
        let tm = crate::matrix::TrafficMatrix::gravity(&t);
        let v = VolumeModel::internet2_baseline();
        let sum: f64 = t
            .nodes()
            .flat_map(|s| t.nodes().map(move |d| (s, d)))
            .map(|(s, d)| v.pair_flows(&tm, s, d))
            .sum();
        assert!((sum - v.flows).abs() < 1e-3);
    }
}
