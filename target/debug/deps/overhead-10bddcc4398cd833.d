/root/repo/target/debug/deps/overhead-10bddcc4398cd833.d: crates/engine/tests/overhead.rs

/root/repo/target/debug/deps/overhead-10bddcc4398cd833: crates/engine/tests/overhead.rs

crates/engine/tests/overhead.rs:
