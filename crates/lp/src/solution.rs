//! Solver results.

use crate::model::{ConId, VarId};

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterLimit,
    /// The basis factorization failed on every attempt (warm, cold, and
    /// the Bland restart). The payload is finite — the origin point and
    /// its true objective — so callers that rank candidates by objective
    /// never ingest a NaN; they must still check the status before
    /// trusting the point.
    NumericalFailure,
}

/// Result of solving a [`crate::Problem`].
#[derive(Debug, Clone)]
pub struct Solution {
    pub status: Status,
    /// Objective value in the problem's own sense (meaningful only when
    /// `status == Optimal`).
    pub objective: f64,
    /// Primal values for the structural variables, indexed by `VarId`.
    pub x: Vec<f64>,
    /// Dual values (simplex multipliers) per constraint row, in the
    /// problem's own sense convention.
    pub duals: Vec<f64>,
    /// Simplex iterations performed.
    pub iterations: usize,
}

impl Solution {
    pub fn value(&self, v: VarId) -> f64 {
        self.x[v.index()]
    }

    pub fn dual(&self, c: ConId) -> f64 {
        self.duals[c.index()]
    }

    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }
}
