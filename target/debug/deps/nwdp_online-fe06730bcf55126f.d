/root/repo/target/debug/deps/nwdp_online-fe06730bcf55126f.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-fe06730bcf55126f.rlib: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/libnwdp_online-fe06730bcf55126f.rmeta: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
