//! Cold-vs-warm comparison for the repeated-solve loops (ISSUE 3).
//!
//! Three hot loops re-solve near-identical LPs:
//!
//! - the FPL online game (one oracle solve per epoch, weights change),
//! - the `GreedyLpResolve` rounding refinement (one inner LP per trial,
//!   bounds change),
//! - the what-if provisioning sweeps (one LP per node, coefficients
//!   change).
//!
//! Each comparison runs the loop cold (every solve from scratch) and warm
//! (basis / network / context reuse), asserts the objectives agree to
//! 1e-9, and reports the wall-clock and simplex-iteration delta.

use crate::output::{f2, Table};
use nwdp_core::nids::{NidsLpConfig, NodeCaps};
use nwdp_core::nips::{round_best_of, solve_relaxation, NipsInstance, RoundingOpts, Strategy};
use nwdp_core::provision::nids_upgrade_plan;
use nwdp_core::{build_units, AnalysisClass};
use nwdp_lp::rowgen::RowGenOpts;
use nwdp_obs as obs;
use nwdp_online::adversary::StochasticUniform;
use nwdp_online::fpl::{run_fpl, FplConfig};
use nwdp_topo::{internet2, PathDb};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};
use std::time::Instant;

/// One cold-vs-warm measurement.
#[derive(Debug, Clone)]
pub struct WarmComparison {
    pub what: String,
    pub cold_secs: f64,
    pub warm_secs: f64,
    /// Total simplex iterations (0 when the loop uses the flow oracle).
    pub cold_iters: u64,
    pub warm_iters: u64,
    /// Absolute objective difference between the two runs (must be ≤1e-9
    /// relative; asserted before returning).
    pub objective_delta: f64,
    /// Warm-basis attempts accepted / fallen back during the warm run
    /// (both 0 for loops that reuse something other than a basis).
    pub warm_hits: u64,
    pub warm_fallbacks: u64,
    /// Dual-repair pivots spent during the warm run.
    pub dual_pivots: u64,
    pub detail: String,
}

impl WarmComparison {
    pub fn speedup(&self) -> f64 {
        self.cold_secs / self.warm_secs.max(1e-12)
    }
}

fn counter_snapshot(prefix: &str) -> u64 {
    obs::snapshot()
        .iter()
        .filter_map(|(name, v)| match v {
            obs::SnapshotValue::Counter(c) if name.starts_with(prefix) => Some(*c),
            _ => None,
        })
        .sum()
}

fn simplex_iterations_snapshot() -> u64 {
    counter_snapshot("simplex.iterations")
}

/// Run `f` with metrics on, returning (value, seconds, simplex iterations).
fn measured<T>(f: impl FnOnce() -> T) -> (T, f64, u64) {
    let was = obs::enabled();
    obs::set_enabled(true);
    let before = simplex_iterations_snapshot();
    let start = Instant::now();
    let v = f();
    let secs = start.elapsed().as_secs_f64();
    let iters = simplex_iterations_snapshot() - before;
    obs::set_enabled(was);
    (v, secs, iters)
}

fn eval_instance(n_rules: usize, cap_frac: f64, seed: u64) -> NipsInstance {
    let t = internet2();
    let paths = PathDb::shortest_paths(&t);
    let tm = TrafficMatrix::gravity(&t);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), seed);
    NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, n_rules, cap_frac, rates)
}

/// FPL online game, `epochs` epochs: fresh flow network per oracle solve
/// (cold) vs one network re-priced per epoch (warm). Results are
/// bit-identical by construction; the assert pins that.
pub fn fpl_cold_vs_warm(epochs: usize, n_rules: usize, seed: u64) -> WarmComparison {
    let mut inst = eval_instance(n_rules, 1.0, seed);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];
    let run = |reuse: bool| {
        let mut adv = StochasticUniform::new(n_rules, inst.paths.len(), 0.01, seed ^ 0x5eed);
        let cfg = FplConfig { epochs, seed, reuse_oracle: reuse, ..Default::default() };
        run_fpl(&inst, &mut adv, &cfg).expect("valid config")
    };
    let (cold, cold_secs, cold_iters) = measured(|| run(false));
    let (warm, warm_secs, warm_iters) = measured(|| run(true));
    let cold_total: f64 = cold.fpl_value.iter().sum();
    let warm_total: f64 = warm.fpl_value.iter().sum();
    let delta = (cold_total - warm_total).abs();
    assert!(
        delta <= 1e-9 * (1.0 + cold_total.abs()),
        "FPL warm/cold objectives diverged: {cold_total} vs {warm_total}"
    );
    WarmComparison {
        what: format!("FPL {epochs} epochs ({n_rules} rules)"),
        cold_secs,
        warm_secs,
        cold_iters,
        warm_iters,
        objective_delta: delta,
        warm_hits: 0,
        warm_fallbacks: 0,
        dual_pivots: 0,
        detail: format!("flow-oracle reuse, total value {warm_total:.1}"),
    }
}

/// GreedyLpResolve rounding, `iterations` trials, on a NON-proportional
/// instance (so the inner LP goes through the simplex, not the flow fast
/// path): cold slack-basis solves vs shared-baseline warm starts.
pub fn rounding_cold_vs_warm(iterations: usize, n_rules: usize, seed: u64) -> WarmComparison {
    let mut inst = eval_instance(n_rules, 0.4, seed);
    // Heterogeneous per-rule requirements defeat `is_proportional`,
    // forcing the simplex inner path the warm starts target.
    for (i, r) in inst.rules.iter_mut().enumerate() {
        r.cpu_per_pkt *= 1.0 + 0.15 * i as f64;
        r.mem_per_item *= 1.0 + 0.10 * i as f64;
    }
    assert!(!inst.is_proportional());
    let relax = solve_relaxation(&inst, &RowGenOpts::default()).expect("relaxation solves");
    let run = |warm: bool| {
        let opts = RoundingOpts {
            strategy: Strategy::GreedyLpResolve,
            iterations,
            seed,
            warm_start: warm,
            ..Default::default()
        };
        round_best_of(&inst, &relax, &opts).expect("rounding solves")
    };
    let (cold, cold_secs, cold_iters) = measured(|| run(false));
    let hits0 = counter_snapshot("simplex.warmstart_hits");
    let falls0 = counter_snapshot("simplex.warmstart_fallbacks");
    let duals0 = counter_snapshot("simplex.dual_pivots");
    let (warm, warm_secs, warm_iters) = measured(|| run(true));
    let warm_hits = counter_snapshot("simplex.warmstart_hits") - hits0;
    let warm_fallbacks = counter_snapshot("simplex.warmstart_fallbacks") - falls0;
    let dual_pivots = counter_snapshot("simplex.dual_pivots") - duals0;
    let delta = (cold.objective - warm.objective).abs();
    assert!(
        delta <= 1e-9 * (1.0 + cold.objective.abs()),
        "rounding warm/cold objectives diverged: {} vs {}",
        cold.objective,
        warm.objective
    );
    WarmComparison {
        what: format!("GreedyLpResolve x{iterations} ({n_rules} rules)"),
        cold_secs,
        warm_secs,
        cold_iters,
        warm_iters,
        objective_delta: delta,
        warm_hits,
        warm_fallbacks,
        dual_pivots,
        detail: format!("shared-baseline basis, best {:.1}", warm.objective),
    }
}

/// NIDS what-if upgrade sweep (one LP re-solve per node): cold solves vs
/// basis chained through the sweep.
///
/// This used to be the fallback showcase: upgrading a node rescales that
/// node's constraint coefficients, which perturbs the basic values far
/// past primal feasibility, so validation rejected every warm basis. The
/// dual simplex phase now repairs those bases in place (the old basis
/// stays dual feasible under the rescaled columns), so the sweep is a
/// genuine warm-start win; `warm_hits` / `warm_fallbacks` / `dual_pivots`
/// report the repair economics, and the chained sweep must still match
/// cold objectives exactly.
pub fn provisioning_cold_vs_warm(factor: f64) -> WarmComparison {
    let t = internet2();
    let paths = PathDb::shortest_paths(&t);
    let tm = TrafficMatrix::gravity(&t);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    // Cold comparator: per-node fresh solves, exactly what
    // `nids_upgrade_plan` did before warm-start chaining.
    let cold_plan = || {
        use nwdp_core::nids::solve_nids_lp;
        let base = solve_nids_lp(&dep, &cfg).expect("solves");
        let mut best = (0usize, 0.0f64);
        for j in 0..dep.num_nodes {
            let mut c = cfg.clone();
            c.caps[j].cpu *= factor;
            c.caps[j].mem *= factor;
            let up = solve_nids_lp(&dep, &c).expect("solves");
            let g = (base.max_load - up.max_load).max(0.0);
            if g > best.1 {
                best = (j, g);
            }
        }
        (base.max_load, best.1)
    };
    let (cold, cold_secs, cold_iters) = measured(cold_plan);
    let hits0 = counter_snapshot("simplex.warmstart_hits");
    let falls0 = counter_snapshot("simplex.warmstart_fallbacks");
    let duals0 = counter_snapshot("simplex.dual_pivots");
    let (warm, warm_secs, warm_iters) =
        measured(|| nids_upgrade_plan(&dep, &cfg, factor).expect("solves"));
    let hits = counter_snapshot("simplex.warmstart_hits") - hits0;
    let fallbacks = counter_snapshot("simplex.warmstart_fallbacks") - falls0;
    let dual_pivots = counter_snapshot("simplex.dual_pivots") - duals0;
    let delta = (cold.0 - warm.base_max_load).abs();
    assert!(
        delta <= 1e-9 * (1.0 + cold.0.abs()),
        "provisioning warm/cold baselines diverged: {} vs {}",
        cold.0,
        warm.base_max_load
    );
    WarmComparison {
        what: format!("NIDS upgrade sweep ({} nodes)", dep.num_nodes),
        cold_secs,
        warm_secs,
        cold_iters,
        warm_iters,
        objective_delta: delta,
        warm_hits: hits,
        warm_fallbacks: fallbacks,
        dual_pivots,
        detail: format!(
            "basis chained across {} re-solves ({hits} warm hits, {fallbacks} fallbacks)",
            dep.num_nodes
        ),
    }
}

pub fn table(results: &[WarmComparison]) -> Table {
    let mut t = Table::new(
        "Warm-start: cold vs warm repeated solves (objectives equal to 1e-9)",
        &[
            "what",
            "cold s",
            "warm s",
            "speedup",
            "cold iters",
            "warm iters",
            "hits",
            "fallbacks",
            "dual pivots",
            "detail",
        ],
    );
    for r in results {
        t.row(vec![
            r.what.clone(),
            f2(r.cold_secs),
            f2(r.warm_secs),
            format!("{:.2}x", r.speedup()),
            r.cold_iters.to_string(),
            r.warm_iters.to_string(),
            r.warm_hits.to_string(),
            r.warm_fallbacks.to_string(),
            r.dual_pivots.to_string(),
            r.detail.clone(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpl_comparison_objectives_agree() {
        let c = fpl_cold_vs_warm(10, 3, 5);
        assert!(c.objective_delta <= 1e-9);
    }

    #[test]
    fn rounding_comparison_objectives_agree() {
        let c = rounding_cold_vs_warm(3, 5, 9);
        assert_eq!(c.objective_delta, 0.0, "same trials, same optima");
        assert!(c.cold_iters > 0, "simplex path must be exercised");
    }
}
