/root/repo/target/debug/deps/nips_exact_vs_rounding-9159a538f5f2ee32.d: tests/nips_exact_vs_rounding.rs Cargo.toml

/root/repo/target/debug/deps/libnips_exact_vs_rounding-9159a538f5f2ee32.rmeta: tests/nips_exact_vs_rounding.rs Cargo.toml

tests/nips_exact_vs_rounding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
