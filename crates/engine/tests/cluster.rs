//! End-to-end tests for the distributed control plane: convergence under
//! clean, crashed, partitioned, lossy, and slow-link fault plans, plus
//! the typed-config and fencing contracts.

use nwdp_core::nids::{
    generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps, SamplingManifest,
};
use nwdp_core::resilience::faultplan::{LinkFault, Partition};
use nwdp_core::resilience::{manifest_gap_fraction, FaultPlan, HealthConfig, HealthConfigError};
use nwdp_core::{build_units, AnalysisClass, NidsDeployment};
use nwdp_engine::cluster::run_cluster;
use nwdp_engine::{ClusterConfig, ClusterError, ClusterRun, DetectionCause};
use nwdp_topo::{internet2, NodeId, PathDb};
use nwdp_traffic::{TrafficMatrix, VolumeModel};

fn setup() -> (NidsDeployment, SamplingManifest, Vec<NodeCaps>) {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let caps = vec![NodeCaps { cpu: 2e8, mem: 4e9 }; dep.num_nodes];
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, caps[0]);
    let a = solve_nids_lp(&dep, &cfg).expect("NIDS LP solves");
    let m = generate_manifests(&dep, &a.d);
    (dep, m, caps)
}

/// Every install log must be strictly increasing in epoch: no node ever
/// (re)runs a stale epoch after a newer install.
fn assert_fenced(run: &ClusterRun) {
    for (j, installs) in run.node_installs.iter().enumerate() {
        for w in installs.windows(2) {
            assert!(w[0].1 < w[1].1, "node {j} install log not monotone: {installs:?}");
        }
    }
    assert_eq!(
        run.node_stale_rejects.iter().sum::<u64>(),
        run.stats.stale_epoch_rejects,
        "per-node fences must sum to the wire counter"
    );
}

#[test]
fn clean_run_stays_converged_with_zero_noise() {
    let (dep, m, caps) = setup();
    let run = run_cluster(&dep, &m, &caps, &FaultPlan::clean(7), &ClusterConfig::default())
        .expect("clean run");
    assert_eq!(run.stats.drops_loss, 0);
    assert_eq!(run.stats.drops_cut, 0);
    assert_eq!(run.stats.retries, 0);
    assert_eq!(run.stats.timeouts, 0);
    assert_eq!(run.stats.stale_epoch_rejects, 0);
    assert!(run.detections.is_empty(), "no faults, no detections: {:?}", run.detections);
    assert_eq!(run.final_epoch, 1);
    assert!(run.node_epochs.iter().all(|&e| e == 1));
    assert!(run.stats.heartbeats > 0, "beats must actually flow");
    // ~50 beats per node over the horizon.
    assert!(run.stats.heartbeats >= 45 * dep.num_nodes as u64);
    assert!((run.coverage_floor() - 1.0).abs() < 1e-12, "clean coverage never dips");
    assert_fenced(&run);
}

#[test]
fn crash_is_detected_near_the_grid_prediction_and_repaired() {
    let (dep, m, caps) = setup();
    let mut plan = FaultPlan::clean(11);
    let fail_at = 0.37;
    plan.crashes.push((NodeId(3), fail_at));
    let cfg = ClusterConfig::default();
    let run = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("crash run");

    // Detection via actually missed heartbeats, near the closed-form grid
    // prediction (monitor needs strict excess past deadline + grace, so
    // up to ~max_detection_delay later than the arithmetic says).
    let d = run.detection_of(NodeId(3)).expect("crash must be detected");
    assert_eq!(d.cause, DetectionCause::MissedHeartbeats);
    let predicted = cfg.health.detect_at(fail_at);
    assert!(
        d.declared_at >= predicted - 1e-9,
        "declared {} before prediction {predicted}",
        d.declared_at
    );
    assert!(
        d.declared_at - predicted <= cfg.health.max_detection_delay() + 0.01 + 1e-9,
        "declared {} too long after prediction {predicted}",
        d.declared_at
    );

    // Repair epoch converged on the survivors; the dead node stays on its
    // last validated manifest (it can't receive anything).
    assert_eq!(run.stats.repairs, 1);
    assert_eq!(run.final_epoch, 2);
    let report = run.epochs.iter().find(|r| r.epoch == 2).expect("repair epoch");
    assert_eq!(report.targets, dep.num_nodes - 1);
    let latency = report.convergence_latency().expect("repair epoch converges");
    assert!(latency > 0.0 && latency < 0.1, "latency {latency}");
    for (j, &e) in run.node_epochs.iter().enumerate() {
        assert_eq!(e, if j == 3 { 1 } else { 2 }, "node {j}");
    }

    // Coverage: never below the no-repair worst case, and recovered above
    // the blind level after repair.
    let blind_gap = manifest_gap_fraction(&dep, &m, &[NodeId(3)]);
    assert!(run.coverage_floor() >= 1.0 - blind_gap - 1e-9);
    let last = run.coverage.last().unwrap().1;
    assert!(
        last > 1.0 - blind_gap + 1e-12,
        "repair must recover coverage: final {last}, blind {}",
        1.0 - blind_gap
    );
    assert_fenced(&run);
}

#[test]
fn partitioned_minority_keeps_last_manifest_and_rejoins_fenced() {
    let (dep, m, caps) = setup();
    let mut plan = FaultPlan::clean(13);
    plan.partitions.push(Partition { nodes: vec![NodeId(7)], from: 0.4, until: 0.7 });
    let run = run_cluster(&dep, &m, &caps, &plan, &ClusterConfig::default()).expect("run");

    let d = run.detection_of(NodeId(7)).expect("partition looks like a failure");
    assert_eq!(d.cause, DetectionCause::MissedHeartbeats);
    assert!(d.declared_at > 0.4 && d.declared_at < 0.5, "declared at {}", d.declared_at);

    // While cut, the minority keeps its last validated manifest: its only
    // install (the catch-up push) happens after the heal.
    let installs = &run.node_installs[7];
    assert_eq!(installs.len(), 1, "exactly one catch-up install: {installs:?}");
    assert!(installs[0].0 >= 0.7, "install at {} is inside the blind window", installs[0].0);
    assert_eq!(installs[0].1, run.final_epoch);
    assert_eq!(run.stats.recoveries, 1, "heal must be noticed");
    assert_eq!(run.node_epochs[7], run.final_epoch, "rejoined node catches up");

    // Coverage floor is the blind window of the partitioned node.
    let blind_gap = manifest_gap_fraction(&dep, &m, &[NodeId(7)]);
    assert!(run.coverage_floor() >= 1.0 - blind_gap - 1e-9);
    // After the heal + catch-up the node rejoins as a spare under the
    // repair epoch: everything except its own unrecoverable
    // (ingress/egress) units is covered again; giving those back is the
    // reload loop's job, not the failure path's.
    let residual = nwdp_core::resilience::greedy_repair(&dep, &m, &caps, &[NodeId(7)])
        .unrecoverable_traffic_fraction;
    let last = run.coverage.last().unwrap().1;
    assert!(
        (last - (1.0 - residual)).abs() < 1e-9,
        "healed coverage {last} should equal repair-bound {}",
        1.0 - residual
    );
    assert!(residual < blind_gap, "repair recovered most of the partitioned share");
    assert_fenced(&run);
}

#[test]
fn lossy_links_retry_and_still_converge() {
    let (dep, m, caps) = setup();
    let mut plan = FaultPlan::lossy(0.1, 0.001, 0.004, 19);
    plan.crashes.push((NodeId(3), 0.37));
    let mut cfg = ClusterConfig::default();
    // At 10% loss, 2 consecutive missed beats happen constantly; 4 make
    // false suspicion vanishingly rare.
    cfg.health.miss_threshold = 4;
    let run = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("lossy run");

    assert!(run.stats.drops_loss > 0, "10% loss must drop something");
    let d = run.detection_of(NodeId(3)).expect("crash detected despite loss");
    let predicted = cfg.health.detect_at(0.37);
    // Loss can only delay arrivals (earlier silence start is bounded by
    // the beat grid), and the monitor waits deadline + grace.
    let slack = cfg.health.max_detection_delay() + 0.02;
    assert!(
        (d.declared_at - predicted).abs() <= slack + 1e-9,
        "declared {} vs predicted {predicted} (slack {slack})",
        d.declared_at
    );
    // The repair epoch must eventually converge on every live node even
    // though individual pushes and acks are dropped.
    assert_eq!(run.final_epoch, 2);
    for (j, &e) in run.node_epochs.iter().enumerate() {
        if j != 3 && !run.detections.iter().any(|x| x.node == NodeId(j)) {
            assert_eq!(e, 2, "live node {j} must converge");
        }
    }
    let blind_gap = manifest_gap_fraction(&dep, &m, &[NodeId(3)]);
    assert!(run.coverage_floor() >= 1.0 - blind_gap - 1e-9);
    assert_fenced(&run);
}

#[test]
fn false_suspicion_under_loss_recovers_and_stays_safe() {
    // Seed 17 is chosen because its draw sequence loses 4 consecutive
    // beats from node 9 early on: a genuine false detection. The property
    // under test: false suspicion is *safe* — the still-alive node keeps
    // analyzing (overlap, never a gap), recovery clears the declaration,
    // and the catch-up push re-fences it onto the live epoch.
    let (dep, m, caps) = setup();
    let mut plan = FaultPlan::lossy(0.1, 0.001, 0.004, 17);
    plan.crashes.push((NodeId(3), 0.37));
    let mut cfg = ClusterConfig::default();
    cfg.health.miss_threshold = 4;
    let run = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("run");

    let false_d = run.detection_of(NodeId(9)).expect("seed 17 falsely suspects node 9");
    assert_eq!(false_d.cause, DetectionCause::MissedHeartbeats);
    assert!(false_d.declared_at < 0.37, "suspicion predates the real crash");
    assert!(run.stats.recoveries >= 1, "next heartbeat through proves liveness");
    assert_eq!(run.final_epoch, 3, "one repair per declaration");
    assert_eq!(run.node_epochs[9], 3, "recovered node re-fenced onto the live epoch");
    // Node 3 was alive for the false-suspicion repair (epoch 2) and died
    // before epoch 3: it keeps the last manifest it validated.
    assert_eq!(run.node_epochs[3], 2, "dead node keeps its last validated manifest");
    // Union bound: any uncovered point at any instant traces back to the
    // original ranges of one of the two declared nodes.
    let worst = manifest_gap_fraction(&dep, &m, &[NodeId(3)])
        + manifest_gap_fraction(&dep, &m, &[NodeId(9)]);
    assert!(run.coverage_floor() >= 1.0 - worst - 1e-9);
    assert_fenced(&run);
}

#[test]
fn slow_link_exhausts_the_retry_budget_and_is_declared_failed() {
    let (dep, m, caps) = setup();
    let mut plan = FaultPlan::clean(23);
    // Node 2's link is lossless but glacial: a push RTT (0.4) far beyond
    // the whole retry window, while heartbeats still arrive (late but
    // within the grace the monitor derives from max delay).
    plan.overrides.push((NodeId(2), LinkFault { drop_p: 0.0, delay_min: 0.2, delay_max: 0.2 }));
    plan.crashes.push((NodeId(3), 0.02));
    let mut cfg = ClusterConfig::default();
    cfg.health.miss_threshold = 4;
    cfg.backoff_base = 0.04;
    cfg.retry_budget = 2;
    let run = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("slow-link run");

    // The crash repair's push to the slow node exhausts its budget.
    let d = run.detection_of(NodeId(2)).expect("slow node declared");
    assert_eq!(d.cause, DetectionCause::RetryExhausted);
    assert!(run.stats.timeouts >= 1);
    assert!(run.stats.retries >= 2, "budget spent before declaring");
    // Late heartbeats keep proving liveness, so it recovers (and may flap
    // — each recovery re-pushes, each push re-exhausts).
    assert!(run.stats.recoveries >= 1);
    assert!(run.stats.repairs >= 2, "slow-node declaration triggers its own repair");
    assert_fenced(&run);
}

#[test]
fn lp_followup_reoptimizes_after_the_greedy_epoch() {
    let (dep, m, caps) = setup();
    let mut plan = FaultPlan::clean(29);
    plan.crashes.push((NodeId(3), 0.3));
    let mut cfg = ClusterConfig::default();
    cfg.lp_followup = true;
    let run = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("lp run");

    assert_eq!(run.stats.repairs, 1, "greedy repair first");
    assert_eq!(run.stats.lp_followups, 1, "LP re-optimization follows");
    assert_eq!(run.final_epoch, 3, "greedy epoch 2, LP epoch 3");
    for (j, &e) in run.node_epochs.iter().enumerate() {
        if j != 3 {
            assert_eq!(e, 3, "node {j} runs the LP epoch");
        }
    }
    // Both post-repair epochs converged.
    assert_eq!(run.convergence_latencies().len(), 2);
    assert_fenced(&run);
}

#[test]
fn invalid_health_config_is_a_typed_error_not_a_panic() {
    let (dep, m, caps) = setup();
    let plan = FaultPlan::clean(1);
    let mut cfg = ClusterConfig::default();
    cfg.health.heartbeat_interval = 0.0;
    assert_eq!(
        run_cluster(&dep, &m, &caps, &plan, &cfg),
        Err(ClusterError::Health(HealthConfigError::NonPositiveInterval(0.0)))
    );
    cfg.health = HealthConfig { miss_threshold: 0, ..HealthConfig::default() };
    assert_eq!(
        run_cluster(&dep, &m, &caps, &plan, &cfg),
        Err(ClusterError::Health(HealthConfigError::ZeroMissThreshold))
    );
    cfg.health = HealthConfig { phase: 1.5, ..HealthConfig::default() };
    assert_eq!(
        run_cluster(&dep, &m, &caps, &plan, &cfg),
        Err(ClusterError::Health(HealthConfigError::PhaseOutOfRange(1.5)))
    );
}

#[test]
fn same_seed_same_run() {
    let (dep, m, caps) = setup();
    let mut plan = FaultPlan::lossy(0.1, 0.001, 0.004, 31);
    plan.crashes.push((NodeId(5), 0.25));
    let mut cfg = ClusterConfig::default();
    cfg.health.miss_threshold = 4;
    let a = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("run a");
    let b = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("run b");
    assert_eq!(a, b, "identical inputs must reproduce the run bit for bit");
    // A different transport seed produces a different delivery schedule.
    plan.seed = 32;
    let c = run_cluster(&dep, &m, &caps, &plan, &cfg).expect("run c");
    assert_ne!(a.fingerprint, c.fingerprint);
}
