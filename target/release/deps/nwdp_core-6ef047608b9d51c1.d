/root/repo/target/release/deps/nwdp_core-6ef047608b9d51c1.d: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs

/root/repo/target/release/deps/libnwdp_core-6ef047608b9d51c1.rlib: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs

/root/repo/target/release/deps/libnwdp_core-6ef047608b9d51c1.rmeta: crates/core/src/lib.rs crates/core/src/class.rs crates/core/src/migration.rs crates/core/src/nids/mod.rs crates/core/src/nids/lp.rs crates/core/src/nids/manifest.rs crates/core/src/nids/manifest_io.rs crates/core/src/nips/mod.rs crates/core/src/nips/hardness.rs crates/core/src/nips/model.rs crates/core/src/nips/relax.rs crates/core/src/nips/round.rs crates/core/src/parallel.rs crates/core/src/provision.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/class.rs:
crates/core/src/migration.rs:
crates/core/src/nids/mod.rs:
crates/core/src/nids/lp.rs:
crates/core/src/nids/manifest.rs:
crates/core/src/nids/manifest_io.rs:
crates/core/src/nips/mod.rs:
crates/core/src/nips/hardness.rs:
crates/core/src/nips/model.rs:
crates/core/src/nips/relax.rs:
crates/core/src/nips/round.rs:
crates/core/src/parallel.rs:
crates/core/src/provision.rs:
crates/core/src/units.rs:
