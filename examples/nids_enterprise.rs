//! Network-wide NIDS for an enterprise: the paper's §2.4 evaluation in
//! miniature. Emulates both deployments over the same trace — edge-only
//! (every site runs stock Bro on its own traffic) vs coordinated
//! (LP-assigned responsibilities via sampling manifests) — and prints the
//! per-node load profile, the bottleneck reduction, and the equivalence
//! check on detection results.
//!
//! Run with: `cargo run --release --example nids_enterprise`

use nwdp::prelude::*;

fn main() {
    let sessions: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);

    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let classes = AnalysisClass::scaled_set(21).expect("21 is within the paper's range");
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);

    println!("enterprise NIDS: {} modules over {} sites, {sessions} sessions\n", 21, 11);

    // Optimize and compile manifests.
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).expect("LP solves");
    let manifest = generate_manifests(&dep, &assignment.d);

    // One shared trace; three deployments.
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(sessions, 2026));
    let hasher = KeyedHasher::with_key(0xD15C0);
    let reference = run_standalone_reference(&dep, &trace, hasher).unwrap();
    let edge = run_edge_only(&dep, &trace, hasher).unwrap();
    let coord =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, hasher).unwrap();

    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>12}",
        "site", "edge CPU", "coord CPU", "edge memMB", "coord memMB"
    );
    for j in 0..topo.num_nodes() {
        println!(
            "{:>14} {:>12} {:>12} {:>12.1} {:>12.1}",
            topo.node(NodeId(j)).name,
            edge.per_node[j].cpu_cycles / 1_000_000,
            coord.per_node[j].cpu_cycles / 1_000_000,
            edge.per_node[j].mem_peak as f64 / 1048576.0,
            coord.per_node[j].mem_peak as f64 / 1048576.0,
        );
    }
    let cpu_cut = 1.0 - coord.max_cpu() as f64 / edge.max_cpu() as f64;
    let mem_cut = 1.0 - coord.max_mem() as f64 / edge.max_mem() as f64;
    println!("\nmax-CPU reduction:    {:.0}%  (paper: ~50%)", cpu_cut * 100.0);
    println!("max-memory reduction: {:.0}%  (paper: ~20%)", mem_cut * 100.0);

    // The equivalence guarantee: coordination changes WHERE analysis runs,
    // never WHAT is detected.
    assert_eq!(coord.alerts, reference.alerts, "coordinated == standalone");
    println!(
        "\ndetection equivalence verified: {} alerts identical to a standalone NIDS",
        coord.alerts.len()
    );
    let scans = coord.alerts.iter().filter(|a| a.kind == "address_scan").count();
    let sigs = coord.alerts.iter().filter(|a| a.kind == "signature_match").count();
    let worms = coord.alerts.iter().filter(|a| a.kind == "blaster_worm").count();
    let floods = coord.alerts.iter().filter(|a| a.kind == "syn_flood").count();
    println!("  scans: {scans}, signature hits: {sigs}, blaster: {worms}, syn floods: {floods}");
}
