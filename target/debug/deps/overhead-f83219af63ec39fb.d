/root/repo/target/debug/deps/overhead-f83219af63ec39fb.d: crates/engine/tests/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-f83219af63ec39fb.rmeta: crates/engine/tests/overhead.rs Cargo.toml

crates/engine/tests/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
