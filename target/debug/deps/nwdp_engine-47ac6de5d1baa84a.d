/root/repo/target/debug/deps/nwdp_engine-47ac6de5d1baa84a.d: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs Cargo.toml

/root/repo/target/debug/deps/libnwdp_engine-47ac6de5d1baa84a.rmeta: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/ac.rs:
crates/engine/src/conn.rs:
crates/engine/src/cost.rs:
crates/engine/src/engine.rs:
crates/engine/src/modules.rs:
crates/engine/src/netwide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
