/root/repo/target/release/examples/routing_change-a7a254ea6e97e2d2.d: examples/routing_change.rs

/root/repo/target/release/examples/routing_change-a7a254ea6e97e2d2: examples/routing_change.rs

examples/routing_change.rs:
