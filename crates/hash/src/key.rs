//! Flow-key extraction for coordination hashing.
//!
//! Different NIDS/NIPS analysis classes hash different header-field
//! combinations (§2.2 of the paper): per-flow analysis hashes the
//! unidirectional 5-tuple; session (connection) analysis hashes a
//! *bidirectional* 5-tuple canonicalized so both directions of a connection
//! hash identically; per-source and per-destination analyses hash a single
//! address. [`FlowKeyKind`] enumerates these aggregation levels and
//! [`flow_key_words`] produces the word sequence fed to the Bob hash.

/// A packet header 5-tuple (IPv4 addresses as host-order `u32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    pub src_ip: u32,
    pub dst_ip: u32,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: u8,
}

impl FiveTuple {
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16, proto: u8) -> Self {
        FiveTuple { src_ip, dst_ip, src_port, dst_port, proto }
    }

    /// The same tuple with source and destination swapped (the reverse
    /// direction of the same connection).
    pub fn reversed(&self) -> Self {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// True if `(src_ip, src_port)` orders lexicographically before
    /// `(dst_ip, dst_port)`; used to canonicalize bidirectional keys.
    fn is_canonical(&self) -> bool {
        (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port)
    }
}

/// The unit of traffic aggregation for a class's coordination hash.
///
/// Mirrors the paper's examples: "for flow-based analysis, the hash is over
/// the unidirectional 5-tuple. For session-based analysis, the hash is over
/// a bidirectional 5-tuple such that the src/dst IP are consistent in both
/// directions."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowKeyKind {
    /// Unidirectional 5-tuple: each direction is a distinct item.
    UniFlow,
    /// Bidirectional 5-tuple: both directions of a connection map to the
    /// same item (required for stateful session analysis).
    BiSession,
    /// Source IP address only (e.g., scan detection tracks sources).
    Source,
    /// Destination IP address only (e.g., flood detection tracks victims).
    Destination,
    /// Unordered source/destination address pair.
    HostPair,
}

/// Encode the key fields selected by `kind` as a word sequence suitable for
/// [`crate::lookup3::hashword`]. Encodings are fixed-width and injective per
/// kind.
pub fn flow_key_words(t: &FiveTuple, kind: FlowKeyKind) -> ([u32; 4], usize) {
    let ports = |a: u16, b: u16| ((a as u32) << 16) | (b as u32);
    match kind {
        FlowKeyKind::UniFlow => {
            ([t.src_ip, t.dst_ip, ports(t.src_port, t.dst_port), t.proto as u32], 4)
        }
        FlowKeyKind::BiSession => {
            let c = if t.is_canonical() { *t } else { t.reversed() };
            ([c.src_ip, c.dst_ip, ports(c.src_port, c.dst_port), c.proto as u32], 4)
        }
        FlowKeyKind::Source => ([t.src_ip, 0, 0, 0], 1),
        FlowKeyKind::Destination => ([t.dst_ip, 0, 0, 0], 1),
        FlowKeyKind::HostPair => {
            let (a, b) =
                if t.src_ip <= t.dst_ip { (t.src_ip, t.dst_ip) } else { (t.dst_ip, t.src_ip) };
            ([a, b, 0, 0], 2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> FiveTuple {
        FiveTuple::new(0x0a000001, 0xc0a80107, 49152, 80, 6)
    }

    #[test]
    fn bisession_is_direction_invariant() {
        let fwd = t();
        let rev = fwd.reversed();
        assert_eq!(
            flow_key_words(&fwd, FlowKeyKind::BiSession),
            flow_key_words(&rev, FlowKeyKind::BiSession)
        );
    }

    #[test]
    fn uniflow_is_direction_sensitive() {
        let fwd = t();
        let rev = fwd.reversed();
        assert_ne!(
            flow_key_words(&fwd, FlowKeyKind::UniFlow),
            flow_key_words(&rev, FlowKeyKind::UniFlow)
        );
    }

    #[test]
    fn host_pair_is_unordered() {
        let fwd = t();
        let rev = fwd.reversed();
        assert_eq!(
            flow_key_words(&fwd, FlowKeyKind::HostPair),
            flow_key_words(&rev, FlowKeyKind::HostPair)
        );
    }

    #[test]
    fn source_and_destination_swap_under_reversal() {
        let fwd = t();
        let rev = fwd.reversed();
        assert_eq!(
            flow_key_words(&fwd, FlowKeyKind::Source),
            flow_key_words(&rev, FlowKeyKind::Destination)
        );
    }

    #[test]
    fn bisession_ties_on_equal_endpoints_are_stable() {
        // src==dst: canonicalization must not loop or panic.
        let same = FiveTuple::new(1, 1, 5, 5, 17);
        let (w, n) = flow_key_words(&same, FlowKeyKind::BiSession);
        assert_eq!(n, 4);
        assert_eq!(w[0], 1);
    }
}
