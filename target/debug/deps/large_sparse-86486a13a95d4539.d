/root/repo/target/debug/deps/large_sparse-86486a13a95d4539.d: crates/lp/tests/large_sparse.rs Cargo.toml

/root/repo/target/debug/deps/liblarge_sparse-86486a13a95d4539.rmeta: crates/lp/tests/large_sparse.rs Cargo.toml

crates/lp/tests/large_sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
