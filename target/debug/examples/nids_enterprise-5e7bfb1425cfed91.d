/root/repo/target/debug/examples/nids_enterprise-5e7bfb1425cfed91.d: examples/nids_enterprise.rs Cargo.toml

/root/repo/target/debug/examples/libnids_enterprise-5e7bfb1425cfed91.rmeta: examples/nids_enterprise.rs Cargo.toml

examples/nids_enterprise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
