/root/repo/target/debug/deps/proptest_lp-d02ecb82b0fa61ce.d: crates/lp/tests/proptest_lp.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_lp-d02ecb82b0fa61ce.rmeta: crates/lp/tests/proptest_lp.rs Cargo.toml

crates/lp/tests/proptest_lp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
