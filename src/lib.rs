//! # nwdp — network-wide deployment of intrusion detection & prevention
//!
//! A library reproduction of *Sekar, Krishnaswamy, Gupta, Reiter:
//! "Network-Wide Deployment of Intrusion Detection and Prevention
//! Systems" (ACM CoNEXT 2010)*.
//!
//! Instead of scaling NIDS/NIPS at single chokepoints, the system exploits
//! the replication of every packet along its forwarding path: a
//! network-wide optimization assigns each analysis responsibility to some
//! node that already sees the traffic, compiled into hash-range sampling
//! manifests that need **zero runtime coordination**.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `nwdp-core` | NIDS assignment LP + manifests, NIPS MILP + randomized rounding, provisioning |
//! | [`lp`] | `nwdp-lp` | simplex (dense + sparse), min-cost flow, branch & bound, row generation |
//! | [`topo`] | `nwdp-topo` | topologies, deterministic shortest-path routing |
//! | [`traffic`] | `nwdp-traffic` | gravity matrices, template sessions, anomaly injection, match rates |
//! | [`hash`] | `nwdp-hash` | Bob (lookup3) hashing, flow keys, hash ranges |
//! | [`engine`] | `nwdp-engine` | Bro-like event/policy engine with 9 analysis modules |
//! | [`online`] | `nwdp-online` | follow-the-perturbed-leader adaptation |
//!
//! ## Quickstart
//!
//! ```
//! use nwdp::prelude::*;
//!
//! // 1. Network model: topology, routing, traffic.
//! let topo = nwdp::topo::internet2();
//! let paths = PathDb::shortest_paths(&topo);
//! let tm = TrafficMatrix::gravity(&topo);
//! let vol = VolumeModel::internet2_baseline();
//!
//! // 2. NIDS deployment: classes → coordination units → LP → manifests.
//! let classes = AnalysisClass::standard_set();
//! let dep = build_units(&topo, &paths, &tm, &vol, &classes);
//! let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
//! let assignment = solve_nids_lp(&dep, &cfg).unwrap();
//! let manifest = generate_manifests(&dep, &assignment.d);
//! assert!(assignment.max_load < 1.0, "no node overloaded");
//! assert_eq!(manifest.verify_coverage(&dep, 64), (1, 1));
//! ```

pub use nwdp_core as core;
pub use nwdp_core::obs;
pub use nwdp_engine as engine;
pub use nwdp_hash as hash;
pub use nwdp_lp as lp;
pub use nwdp_online as online;
pub use nwdp_topo as topo;
pub use nwdp_traffic as traffic;

/// The most common imports in one place.
pub mod prelude {
    pub use nwdp_core::nids::{
        edge_only_loads, generate_manifests, solve_nids_lp, validate_manifests,
        validate_manifests_excluding, CapacityCeiling, ManifestEntry, ManifestValidationError,
        NidsLpConfig, NodeCaps, SamplingManifest,
    };
    pub use nwdp_core::nips::{
        round_best_of, solve_relaxation, NipsInstance, RoundError, RoundingOpts, Strategy,
    };
    pub use nwdp_core::resilience::{
        covered_fraction, distance_weighted_values, greedy_repair, lp_repair,
        manifest_gap_fraction, manifest_loads, shed_overload, simulate_node_failure,
        DegradeOutcome, FailureKind, FailureReport, FailureScenario, FailureSchedule,
        FailureTimeline, FaultPlan, HealthConfig, HealthConfigError, HeartbeatMonitor, LinkFault,
        Partition, RepairOutcome,
    };
    pub use nwdp_core::{
        build_units, AnalysisClass, ClassScope, ClassSetError, NidsDeployment, UnitKey,
    };
    pub use nwdp_engine::{
        plan_manifest_epochs, run_cluster, run_coordinated, run_coordinated_resilient,
        run_coordinated_stream, run_coordinated_stream_reload, run_edge_only, run_edge_only_faulty,
        run_standalone_reference, shard_of, stream_shards, ClusterConfig, ClusterError, ClusterRun,
        CoordContext, Detection, DetectionCause, Engine, EngineError, ManifestEpoch, NetStats,
        Placement, ReloadConfig, ReloadController, ReloadOutcome, ReloadRun, ResilienceConfig,
        ResilientRun, Sabotage,
    };
    pub use nwdp_hash::{FiveTuple, FlowKeyKind, KeyedHasher, RangeSet};
    pub use nwdp_lp::rowgen::RowGenOpts;
    pub use nwdp_online::{run_fpl, FplConfig, FplError, StochasticUniform};
    pub use nwdp_topo::{NodeId, Path, PathDb, Topology};
    pub use nwdp_traffic::{
        generate_trace, node_of_ip, AppProtocol, FaultInjector, MatchRates, NetTrace, NodeBlackout,
        SessionStream, TraceConfig, TrafficMatrix, VolumeModel,
    };
}
