/root/repo/target/release/deps/nwdp_engine-1b2525812894e566.d: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

/root/repo/target/release/deps/libnwdp_engine-1b2525812894e566.rlib: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

/root/repo/target/release/deps/libnwdp_engine-1b2525812894e566.rmeta: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

crates/engine/src/lib.rs:
crates/engine/src/ac.rs:
crates/engine/src/conn.rs:
crates/engine/src/cost.rs:
crates/engine/src/engine.rs:
crates/engine/src/modules.rs:
crates/engine/src/netwide.rs:
