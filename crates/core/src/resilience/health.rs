//! Heartbeat-based failure detection and detection-window accounting.
//!
//! The coordination model has no runtime channel between nodes, so
//! failures are noticed out of band: every node emits a heartbeat each
//! `heartbeat_interval` (in replay fractions, matching the scenario
//! clock) and the controller declares a node failed after
//! `miss_threshold` consecutive misses. Between the failure instant and
//! the detection instant the network is **blind** on the failed node's
//! hash ranges — no survivor knows to pick them up. The timeline type
//! turns (failure time, detection delay, repair quality) into exact
//! coverage-over-time accounting for the `repro resilience` harness.

/// Heartbeat/health-check configuration. All times are replay fractions.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Spacing of heartbeats.
    pub heartbeat_interval: f64,
    /// Consecutive missed beats before the node is declared failed.
    pub miss_threshold: u32,
    /// Offset of the beat grid within `[0, 1)` of an interval (beats fire
    /// at `(k + phase) · heartbeat_interval`).
    pub phase: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { heartbeat_interval: 0.02, miss_threshold: 2, phase: 0.0 }
    }
}

impl HealthConfig {
    /// When is a failure at replay fraction `fail_at` detected? The first
    /// missed beat is the first grid point at or after the failure; the
    /// node is declared dead `miss_threshold - 1` beats later.
    pub fn detect_at(&self, fail_at: f64) -> f64 {
        assert!(self.heartbeat_interval > 0.0, "heartbeat interval must be positive");
        assert!(self.miss_threshold >= 1, "at least one miss is needed to detect");
        let i = self.heartbeat_interval;
        let first_missed = ((fail_at - self.phase * i) / i).ceil() * i + self.phase * i;
        first_missed + (self.miss_threshold - 1) as f64 * i
    }

    /// Worst-case detection delay (failure lands just after a beat).
    pub fn max_detection_delay(&self) -> f64 {
        self.heartbeat_interval * self.miss_threshold as f64
    }
}

/// Coverage-over-time accounting for one failure.
#[derive(Debug, Clone, Copy)]
pub struct FailureTimeline {
    /// Failure instant (replay fraction).
    pub fail_at: f64,
    /// Instant the health check fires.
    pub detected_at: f64,
    /// Instant the repaired manifest takes effect. The greedy fast path
    /// is pure range arithmetic, so this equals `detected_at` on the
    /// replay clock; its wall-clock cost is exported separately as
    /// `resilience.repair_ns`.
    pub repaired_at: f64,
    /// Traffic-weighted coverage gap while blind (= the failed node's
    /// manifest share of observed traffic).
    pub blind_gap: f64,
    /// Gap remaining after repair (unrecoverable units).
    pub residual_gap: f64,
}

impl FailureTimeline {
    /// Traffic-weighted coverage fraction at replay fraction `t`.
    pub fn coverage_at(&self, t: f64) -> f64 {
        if t < self.fail_at {
            1.0
        } else if t < self.repaired_at {
            1.0 - self.blind_gap
        } else {
            1.0 - self.residual_gap
        }
    }

    /// Integral of the coverage *deficit* `1 - coverage(t)` over
    /// `[0, horizon]`: the total traffic-fraction·time lost to the
    /// failure. The paper-style summary number for a resilience run.
    pub fn lost_coverage_time(&self, horizon: f64) -> f64 {
        let blind_end = self.repaired_at.min(horizon);
        let blind = (blind_end - self.fail_at).max(0.0) * self.blind_gap;
        let residual = (horizon - self.repaired_at).max(0.0) * self.residual_gap;
        blind + residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_grid_arithmetic() {
        let h = HealthConfig { heartbeat_interval: 0.1, miss_threshold: 3, phase: 0.0 };
        // Failure right on a beat: that beat is missed.
        assert!((h.detect_at(0.2) - 0.4).abs() < 1e-12);
        // Failure just after a beat waits almost a full extra interval.
        let d = h.detect_at(0.201);
        assert!((d - 0.5).abs() < 1e-12, "{d}");
        assert!((h.max_detection_delay() - 0.3).abs() < 1e-12);
        // Delay is always within (0, max].
        for k in 0..50 {
            let t = k as f64 * 0.013;
            let delay = h.detect_at(t) - t;
            assert!(delay > 0.0 - 1e-12 && delay <= h.max_detection_delay() + 1e-12, "{delay}");
        }
    }

    #[test]
    fn phase_shifts_the_grid() {
        let h = HealthConfig { heartbeat_interval: 0.1, miss_threshold: 1, phase: 0.5 };
        // Beats at 0.05, 0.15, ... — a failure at 0.1 is caught at 0.15.
        assert!((h.detect_at(0.1) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn timeline_integrates_exactly() {
        let tl = FailureTimeline {
            fail_at: 0.2,
            detected_at: 0.3,
            repaired_at: 0.3,
            blind_gap: 0.4,
            residual_gap: 0.05,
        };
        assert_eq!(tl.coverage_at(0.0), 1.0);
        assert!((tl.coverage_at(0.25) - 0.6).abs() < 1e-12);
        assert!((tl.coverage_at(0.9) - 0.95).abs() < 1e-12);
        // 0.1 blind at gap 0.4 + 0.7 residual at 0.05.
        assert!((tl.lost_coverage_time(1.0) - (0.1 * 0.4 + 0.7 * 0.05)).abs() < 1e-12);
        // Horizon before repair clips the residual term.
        assert!((tl.lost_coverage_time(0.25) - 0.05 * 0.4).abs() < 1e-12);
    }
}
