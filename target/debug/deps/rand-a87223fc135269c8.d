/root/repo/target/debug/deps/rand-a87223fc135269c8.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/debug/deps/rand-a87223fc135269c8: crates/rand/src/lib.rs crates/rand/src/rngs.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
