/root/repo/target/debug/deps/nwdp_obs-fa4f09650b6bd9c2.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libnwdp_obs-fa4f09650b6bd9c2.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libnwdp_obs-fa4f09650b6bd9c2.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/metrics.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/metrics.rs:
crates/obs/src/registry.rs:
