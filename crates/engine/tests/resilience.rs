//! Node-failure resilience, end to end at the engine layer.
//!
//! The paper's static sampling manifests make coordination free at
//! runtime — and make a crashed node's hash ranges silently unobserved.
//! These tests drive the full replay harness through failures:
//!
//! - edge-only deployments have no one to cover for a blind node, so
//!   coverage simply drops (the brittleness baseline);
//! - a coordinated deployment running `plan_manifest_epochs` +
//!   `run_coordinated_resilient` loses exactly the crashed node's
//!   single-node (ingress/egress) units and recovers everything else,
//!   exact-sweep verified, for *every* single Internet2 node crash;
//! - detection delay costs exactly the blind-window alerts, never more.

use nwdp_core::nids::{generate_manifests, solve_nids_lp, NidsLpConfig, NodeCaps};
use nwdp_core::resilience::{
    manifest_gap_fraction, manifest_loads, FailureKind, FailureScenario, FailureSchedule,
    HealthConfig,
};
use nwdp_core::{build_units, AnalysisClass, NidsDeployment};
use nwdp_engine::{
    coverage_timeline, run_coordinated, run_coordinated_resilient, run_edge_only,
    run_edge_only_faulty, run_standalone_reference, Alert, Placement, ResilienceConfig,
};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{internet2, NodeId, PathDb, Topology};
use nwdp_traffic::{
    generate_trace, node_of_ip, FaultInjector, NetTrace, TraceConfig, TrafficMatrix, VolumeModel,
};
use std::collections::BTreeSet;

fn setup(sessions: usize, seed: u64) -> (Topology, PathDb, NidsDeployment, NetTrace) {
    let topo = internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let trace = generate_trace(&topo, &tm, &TraceConfig::new(sessions, seed));
    (topo, paths, dep, trace)
}

fn lp_caps(dep: &NidsDeployment) -> NidsLpConfig {
    NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 })
}

fn manifest_for(dep: &NidsDeployment) -> nwdp_core::nids::SamplingManifest {
    let assignment = solve_nids_lp(dep, &lp_caps(dep)).expect("NIDS LP solves");
    generate_manifests(dep, &assignment.d)
}

/// Alerts only the crashed node could ever raise: its ingress-scoped Scan
/// aggregation and egress-scoped SYN-flood aggregation. Everything else is
/// path-scoped and must survive repair.
fn scoped_to(alert: &Alert, node: NodeId) -> bool {
    (alert.kind == "address_scan" || alert.kind == "syn_flood")
        && node_of_ip(alert.subject as u32) == node
}

/// Heartbeat config that detects a crash at `t = 0` immediately.
fn instant_detection() -> HealthConfig {
    HealthConfig { heartbeat_interval: 0.01, miss_threshold: 1, phase: 0.0 }
}

/// Heartbeat config whose detection window never closes within the
/// replay: a crash stays unrepaired for the whole run.
fn never_detects() -> HealthConfig {
    HealthConfig { heartbeat_interval: 10.0, miss_threshold: 2, phase: 0.0 }
}

#[test]
fn edge_only_coverage_drops_while_coordinated_repair_restores_it() {
    let (_t, paths, dep, trace) = setup(2500, 42);
    let manifest = manifest_for(&dep);
    let h = KeyedHasher::with_key(0xA11CE);

    // Edge-only baseline; blind the home node of some scanner so the
    // blackout is guaranteed to cost at least that scan alert (only the
    // ingress vantage point can aggregate a source across destinations).
    let edge = run_edge_only(&dep, &trace, h).unwrap();
    let x = edge
        .alerts
        .iter()
        .find(|a| a.kind == "address_scan")
        .map(|a| node_of_ip(a.subject as u32))
        .expect("workload must contain a scan");
    let faults = FaultInjector::node_blackout(x, 0.0, 1.0);
    let edge_blind = run_edge_only_faulty(&dep, &trace, h, &faults).unwrap();
    assert!(edge_blind.alerts.is_subset(&edge.alerts), "a blind node cannot add alerts");
    let edge_lost: BTreeSet<_> = edge.alerts.difference(&edge_blind.alerts).cloned().collect();
    assert!(!edge_lost.is_empty(), "blinding an edge node must cost alerts");
    for a in &edge_lost {
        assert!(scoped_to(a, x), "edge loss not attributable to the blind node: {a:?}");
    }

    // Coordinated deployment, same crash, but *undetected*: node `x` also
    // takes its share of everyone's path units down with it.
    let schedule = FailureSchedule::single_crash(x, 0.0);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    let caps = lp_caps(&dep).caps;
    let unrepaired = run_coordinated_resilient(
        &dep,
        &manifest,
        &paths,
        &trace,
        Placement::EventEngine,
        h,
        &ResilienceConfig { caps: &caps, schedule: &schedule, health: never_detects() },
    )
    .unwrap();
    assert_eq!(unrepaired.epochs.len(), 1, "no detection, no repair epoch");
    assert!(unrepaired.epochs[0].failed.is_empty());

    // Coordinated deployment with detection and greedy repair: only the
    // provably unrecoverable alerts (scoped to `x`) are lost.
    let repaired = run_coordinated_resilient(
        &dep,
        &manifest,
        &paths,
        &trace,
        Placement::EventEngine,
        h,
        &ResilienceConfig { caps: &caps, schedule: &schedule, health: instant_detection() },
    )
    .unwrap();
    assert_eq!(repaired.epochs.len(), 1);
    assert_eq!(repaired.epochs[0].failed, vec![x], "instant detection repairs from t = 0");
    let expected: BTreeSet<_> =
        reference.alerts.iter().filter(|a| !scoped_to(a, x)).cloned().collect();
    assert_eq!(
        repaired.run.alerts, expected,
        "repair must restore every alert except the crashed node's own aggregations"
    );

    // The regression claim itself: the unrepaired network misses alerts
    // the repaired one finds, and finds nothing the repaired one lacks.
    assert!(unrepaired.run.alerts.is_subset(&repaired.run.alerts));
    assert!(
        unrepaired.run.alerts.len() < repaired.run.alerts.len(),
        "repair must recover path-unit alerts the crashed node abandoned"
    );
}

#[test]
fn any_single_internet2_crash_recovers_everything_recoverable() {
    nwdp_obs::set_enabled(true);
    nwdp_obs::reset();
    let (_t, paths, dep, trace) = setup(1500, 7);
    let manifest = manifest_for(&dep);
    let caps = lp_caps(&dep).caps;
    let h = KeyedHasher::with_key(0xFEED);
    let reference = run_standalone_reference(&dep, &trace, h).unwrap();
    let total_pkts: f64 = dep.units.iter().map(|u| u.pkts).sum();

    for j in 0..dep.num_nodes {
        let x = NodeId(j);

        // Blind-window accounting: the coverage gap while `x` is down and
        // undetected is exactly its traffic-weighted manifest share.
        let gap = manifest_gap_fraction(&dep, &manifest, &[x]);
        let share: f64 = dep
            .units
            .iter()
            .enumerate()
            .map(|(u, unit)| manifest.share(u, x) * unit.pkts)
            .sum::<f64>()
            / total_pkts;
        assert!((gap - share).abs() < 1e-9, "node {j}: gap {gap} vs share {share}");

        // Engine replay with instant detection: the repaired network's
        // alert set equals the standalone reference minus the alerts only
        // `x` could raise.
        let schedule = FailureSchedule::single_crash(x, 0.0);
        let resilient = run_coordinated_resilient(
            &dep,
            &manifest,
            &paths,
            &trace,
            Placement::EventEngine,
            h,
            &ResilienceConfig { caps: &caps, schedule: &schedule, health: instant_detection() },
        )
        .unwrap();
        let repaired_manifest = &resilient.epochs[0].manifest;

        // Exact-sweep verification: every multi-node unit is back to full
        // coverage under the repaired manifest; only `x`'s own
        // single-node units stay dark.
        for (u, unit) in dep.units.iter().enumerate() {
            let (lo, hi) = repaired_manifest.unit_coverage_exact(&dep, u);
            if unit.nodes == [x] {
                assert_eq!((lo, hi), (0, 0), "node {j} unit {u}: nobody can cover a dead vantage");
            } else {
                assert_eq!((lo, hi), (1, 1), "node {j} unit {u} has a gap or overlap");
            }
        }
        assert!(
            manifest_gap_fraction(&dep, repaired_manifest, &[x])
                < manifest_gap_fraction(&dep, &manifest, &[x]),
            "node {j}: repair must shrink the gap"
        );

        let expected: BTreeSet<_> =
            reference.alerts.iter().filter(|a| !scoped_to(a, x)).cloned().collect();
        assert_eq!(resilient.run.alerts, expected, "node {j}: repair left alerts missing");
    }

    // Acceptance: repair latency and shed fraction are exported via
    // nwdp-obs by the epoch planner.
    let snap = nwdp_obs::snapshot();
    let get = |name: &str| snap.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone());
    match get("resilience.repair_ns") {
        Some(nwdp_obs::SnapshotValue::Timer { count, .. }) => {
            assert!(count >= dep.num_nodes as u64, "one timed repair per crash")
        }
        other => panic!("resilience.repair_ns missing or mistyped: {other:?}"),
    }
    // Other tests in this binary may run concurrently and shed for real,
    // so only assert the gauge is exported and sane, not its exact value.
    match get("resilience.shed_fraction") {
        Some(nwdp_obs::SnapshotValue::Gauge(v)) => {
            assert!((0.0..=1.0).contains(&v), "shed fraction out of range: {v}")
        }
        other => panic!("resilience.shed_fraction missing or mistyped: {other:?}"),
    }
    match get("resilience.repairs") {
        Some(nwdp_obs::SnapshotValue::Counter(c)) => assert!(c >= dep.num_nodes as u64),
        other => panic!("resilience.repairs missing or mistyped: {other:?}"),
    }
    nwdp_obs::set_enabled(false);
}

#[test]
fn detection_delay_costs_exactly_the_blind_window() {
    let (_t, paths, dep, trace) = setup(2000, 23);
    let manifest = manifest_for(&dep);
    let caps = lp_caps(&dep).caps;
    let h = KeyedHasher::with_key(0xDE1A7);
    let x = NodeId(3);
    let schedule = FailureSchedule::single_crash(x, 0.0);

    let run_with = |health: HealthConfig| {
        run_coordinated_resilient(
            &dep,
            &manifest,
            &paths,
            &trace,
            Placement::EventEngine,
            h,
            &ResilienceConfig { caps: &caps, schedule: &schedule, health },
        )
        .unwrap()
    };
    let instant = run_with(instant_detection());
    // Detection after half the replay: until then the original manifest
    // runs with `x` blind.
    let delayed =
        run_with(HealthConfig { heartbeat_interval: 0.25, miss_threshold: 3, phase: 0.0 });

    assert_eq!(delayed.epochs.len(), 2);
    assert!(delayed.epochs[0].failed.is_empty(), "blind window runs the original manifest");
    assert!((delayed.epochs[1].from - 0.5).abs() < 1e-12);
    assert_eq!(delayed.epochs[1].failed, vec![x]);
    assert!(
        delayed.epochs[1].residual_gap < manifest_gap_fraction(&dep, &manifest, &[x]),
        "the repaired epoch must close most of the gap"
    );

    // The coverage time series reproduces the blind window exactly: the
    // original-manifest gap from the crash until detection at 0.5, the
    // repaired-manifest residual gap afterwards.
    let health = HealthConfig { heartbeat_interval: 0.25, miss_threshold: 3, phase: 0.0 };
    let timeline = coverage_timeline(
        &dep,
        &ResilienceConfig { caps: &caps, schedule: &schedule, health },
        &delayed.epochs,
    );
    let blind_gap = manifest_gap_fraction(&dep, &manifest, &[x]);
    assert_eq!(timeline.len(), 2, "crash-at-0 plus one repair boundary: {timeline:?}");
    assert_eq!(timeline[0].0, 0.0);
    assert!((timeline[0].1 - (1.0 - blind_gap)).abs() < 1e-12, "blind window coverage");
    assert!((timeline[1].0 - 0.5).abs() < 1e-12);
    assert!(
        (timeline[1].1 - (1.0 - delayed.epochs[1].residual_gap)).abs() < 1e-12,
        "post-repair coverage"
    );
    assert!(timeline[1].1 > timeline[0].1, "repair must raise coverage");

    // Greedy repair only ever *adds* ranges to survivors, so every session
    // the delayed run analyzes is analyzed by the same owner in the
    // instant run: delayed alerts are a strict subset.
    assert!(delayed.run.alerts.is_subset(&instant.run.alerts));
    assert!(
        delayed.run.alerts.len() < instant.run.alerts.len(),
        "half a replay of blindness must cost some alerts"
    );
}

#[test]
fn capacity_degradation_sheds_and_still_runs() {
    let (_t, paths, dep, trace) = setup(1500, 99);
    let manifest = manifest_for(&dep);
    let caps = lp_caps(&dep).caps;
    let h = KeyedHasher::with_key(0x0DD);
    let x = NodeId(2);

    // Scale the degradation so the node ends up 2x over its shrunken
    // capacity: factor = half its current bottleneck utilisation.
    let (cpu, mem) = manifest_loads(&dep, &caps, &manifest);
    let util = cpu[x.index()].max(mem[x.index()]);
    assert!(util > 0.0, "an Internet2 node always carries load");
    let schedule = FailureSchedule {
        events: vec![FailureScenario {
            node: x,
            at: 0.4,
            kind: FailureKind::CapacityDegraded { factor: util / 2.0 },
        }],
    };

    let baseline =
        run_coordinated(&dep, &manifest, &paths, &trace, Placement::EventEngine, h).unwrap();
    let degraded = run_coordinated_resilient(
        &dep,
        &manifest,
        &paths,
        &trace,
        Placement::EventEngine,
        h,
        &ResilienceConfig { caps: &caps, schedule: &schedule, health: instant_detection() },
    )
    .unwrap();

    assert_eq!(degraded.epochs.len(), 2);
    assert_eq!(degraded.epochs[0].shed_fraction, 0.0, "full capacity until the event");
    assert!(degraded.epochs[1].shed_fraction > 0.0, "an overloaded node must shed");
    assert!(degraded.epochs[1].failed.is_empty(), "degradation is not a crash");
    // Shedding only removes analysis; it never invents alerts. The node
    // itself keeps watching (degraded, not blind), so nothing outside the
    // shed ranges is lost.
    assert!(degraded.run.alerts.is_subset(&baseline.alerts));
}
