//! Alert-plane hardening: over hostile record fields (embedded pipes,
//! equals signs, newlines, NULs, control bytes, quotes, deep JSON-ish
//! nesting) the SIEM encoders must never produce an injectable or
//! structurally unbalanced line — every JSONL line re-parses to the
//! original record, every CEF line keeps exactly its seven unescaped
//! header pipes — and with the alert plane off (`NWDP_ALERT` unset) the
//! data plane stays bit-identical across thread and shard counts.

use nwdp::core::parallel;
use nwdp::obs;
use nwdp::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// The characters an attacker would aim at each encoder: CEF field and
/// key separators, the escape character itself, line breaks, NUL and
/// other control bytes, JSON string syntax, and multibyte UTF-8.
const HOSTILE: &[char] = &[
    '|', '=', '\\', '\n', '\r', '\0', '\u{1}', '\u{8}', '\t', '\u{1b}', '\u{7f}', '"', '{', '}',
    '[', ']', ':', ',', ' ', 'a', 'Z', '0', '.', 'é', '☃',
];

fn arb_hostile() -> impl proptest::strategy::Strategy<Value = String> {
    proptest::collection::vec(0usize..HOSTILE.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| HOSTILE[i]).collect())
}

fn record(class: String, kind: String, seed: u64) -> obs::AlertRecord {
    obs::AlertRecord {
        ts: (seed % 1000) as f64 / 1000.0,
        node: seed % 11,
        class,
        kind,
        subject: seed.wrapping_mul(0x9e3779b97f4a7c15),
        severity: (seed % 10) as u8,
        src_ip: (seed >> 8) as u32,
        dst_ip: (seed >> 16) as u32,
        src_port: (seed >> 24) as u16,
        dst_port: (seed >> 32) as u16,
        proto: if seed.is_multiple_of(2) { 6 } else { 17 },
    }
}

/// Unescaped `=` signs in a CEF extension — exactly one per key, or an
/// attacker smuggled a key boundary through a value.
fn unescaped_equals(ext: &str) -> usize {
    let bytes = ext.as_bytes();
    let mut n = 0;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1, // skip the escaped character
            b'=' => n += 1,
            _ => {}
        }
        i += 1;
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CEF: one line, seven unescaped header pipes, every header field
    /// unescapes, the kind round-trips through field 4, and the
    /// extension holds exactly its ten `key=` separators.
    #[test]
    fn cef_encoding_is_never_injectable(
        case in (arb_hostile(), arb_hostile(), 0u64..1_000_000)
    ) {
        let (class, kind, seed) = case;
        let rec = record(class.clone(), kind.clone(), seed);
        let line = obs::encode_cef(&rec);
        prop_assert!(!line.contains('\n') && !line.contains('\r') && !line.contains('\0'),
            "raw line break or NUL in CEF line: {:?}", line);
        let Some((header, ext)) = obs::split_cef(&line) else {
            return Err(TestCaseError::fail(format!("CEF line does not split: {line:?}")));
        };
        prop_assert_eq!(header.len(), 7, "CEF header must keep exactly 7 fields: {:?}", line);
        prop_assert_eq!(header[0].as_str(), "CEF:0");
        for f in &header {
            prop_assert!(obs::cef_unescape(f).is_some(), "header field {:?} does not unescape", f);
        }
        // Injectivity: the hostile kind comes back byte-for-byte.
        prop_assert_eq!(obs::cef_unescape(&header[4]).unwrap(), kind);
        prop_assert!(header[6].parse::<u8>().is_ok(), "severity field {:?}", header[6]);
        prop_assert_eq!(unescaped_equals(&ext), 10,
            "extension key separators corrupted: {:?}", ext);
    }

    /// JSONL: one line, parses back, and the hostile class/kind strings
    /// and every numeric field round-trip exactly.
    #[test]
    fn jsonl_encoding_round_trips_hostile_fields(
        case in (arb_hostile(), arb_hostile(), 0u64..1_000_000)
    ) {
        let (class, kind, seed) = case;
        let rec = record(class.clone(), kind.clone(), seed);
        let line = obs::encode_jsonl(&rec);
        prop_assert!(!line.contains('\n') && !line.contains('\r'),
            "raw line break in JSONL line: {:?}", line);
        let doc = match obs::parse_json(&line) {
            Ok(d) => d,
            Err(e) => return Err(TestCaseError::fail(format!("unparseable ({e}): {line:?}"))),
        };
        prop_assert_eq!(doc.get("class").and_then(obs::Json::as_str), Some(class.as_str()));
        prop_assert_eq!(doc.get("kind").and_then(obs::Json::as_str), Some(kind.as_str()));
        let num = |k: &str| doc.get(k).and_then(obs::Json::as_f64);
        prop_assert_eq!(num("node"), Some(rec.node as f64));
        prop_assert_eq!(num("subject"), Some(rec.subject as f64));
        prop_assert_eq!(num("severity"), Some(rec.severity as f64));
        prop_assert_eq!(num("src_ip"), Some(rec.src_ip as f64));
        prop_assert_eq!(num("dst_port"), Some(rec.dst_port as f64));
    }
}

/// A field carrying 100-deep JSON-looking nesting must ride inside one
/// escaped string literal — the emitted line stays a flat object the
/// parser accepts, and the payload round-trips byte-for-byte.
#[test]
fn deeply_nested_payload_stays_a_flat_string() {
    let depth = 100;
    let mut payload = String::new();
    for _ in 0..depth {
        payload.push_str("[{\"a\":");
    }
    payload.push_str("\"x\"");
    for _ in 0..depth {
        payload.push_str("}]");
    }
    let rec = record(payload.clone(), format!("k|{payload}"), 42);
    let line = obs::encode_jsonl(&rec);
    let doc = obs::parse_json(&line).expect("nested payload must stay inside a string literal");
    assert_eq!(doc.get("class").and_then(obs::Json::as_str), Some(payload.as_str()));
    let cef = obs::encode_cef(&rec);
    let (header, _ext) = obs::split_cef(&cef).expect("CEF line must still split");
    assert_eq!(header.len(), 7);
    assert_eq!(obs::cef_unescape(&header[4]).unwrap(), format!("k|{payload}"));
}

/// With `NWDP_ALERT` unset the alert plane is off and free: the
/// streaming data plane is bit-identical across 1/4 threads × 1/3
/// shards, and turning the plane *on* (the env-set case) still leaves
/// the `NetworkRun` untouched — the plane observes, never perturbs.
#[test]
fn data_plane_bit_identical_with_alert_plane_off_and_on() {
    assert!(!obs::alert_enabled(), "NWDP_ALERT is unset: the plane must start off");
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(&topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).unwrap();
    let manifest = generate_manifests(&dep, &assignment.d);
    let trace_cfg = TraceConfig::new(2500, 17);
    let h = KeyedHasher::with_key(5);

    let run_once = |shards: usize| {
        run_coordinated_stream(
            &dep,
            &manifest,
            &paths,
            || SessionStream::new(&topo, &tm, &trace_cfg),
            Placement::EventEngine,
            h,
            shards,
        )
        .unwrap()
    };

    let baseline = run_once(1);
    for threads in [1usize, 4] {
        for shards in [1usize, 3] {
            let off = parallel::with_threads(threads, || run_once(shards));
            assert_eq!(
                off.alerts, baseline.alerts,
                "plane off must be bit-identical ({threads} threads, {shards} shards)"
            );
            for (a, b) in off.per_node.iter().zip(&baseline.per_node) {
                assert_eq!(a.packets, b.packets);
                assert_eq!(a.cpu_cycles, b.cpu_cycles);
                assert_eq!(a.mem_peak, b.mem_peak);
                assert_eq!(a.per_module_cpu, b.per_module_cpu);
                assert_eq!(a.alerts, b.alerts);
            }
        }
    }

    // Plane on: structured emission runs, results stay identical, and the
    // egress bytes are themselves thread-count-invariant at a fixed shard
    // count (merge-time re-detections get a deterministic context, not
    // whatever the merging thread last processed).
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let mut egress: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 4] {
        obs::reset_alerts();
        obs::clear_alert_writers();
        let buf = SharedBuf::default();
        obs::add_alert_writer(obs::AlertFormat::Jsonl, Box::new(buf.clone()));
        obs::set_alert_enabled(true);
        let on = parallel::with_threads(threads, || run_once(3));
        let stats = obs::flush_alerts().unwrap();
        obs::set_alert_enabled(false);

        assert_eq!(on.alerts, baseline.alerts, "plane on must not perturb the run");
        for (a, b) in on.per_node.iter().zip(&baseline.per_node) {
            assert_eq!(a.packets, b.packets);
            assert_eq!(a.cpu_cycles, b.cpu_cycles);
            assert_eq!(a.per_module_cpu, b.per_module_cpu);
            assert_eq!(a.alerts, b.alerts);
        }
        assert!(stats.emitted > 0, "the plane must have seen the detections");
        assert_eq!(stats.emitted, stats.written + stats.deduped + stats.dropped_ratelimit);
        egress.push(buf.0.lock().unwrap_or_else(|e| e.into_inner()).clone());
    }
    obs::clear_alert_writers();
    obs::reset_alerts();
    assert_eq!(
        egress[0], egress[1],
        "egress must be byte-identical across thread counts at fixed shards"
    );
}
