//! Cross-crate property tests on the system's core invariants.

use nwdp::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// Random fractional assignments over random unit shapes must always
/// compile into manifests that partition the hash space exactly.
fn arb_unit_split() -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    // 1..=5 positive shares, normalized to 1.
    proptest::collection::vec(0.01f64..1.0, 1..=5).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        for x in v.iter_mut() {
            *x /= s;
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn manifests_partition_unit_interval(splits in proptest::collection::vec(arb_unit_split(), 1..6)) {
        // Build a synthetic deployment: a line topology long enough for
        // the widest split AND with at least one path-unit per split
        // (a line of n nodes yields n(n-1) >= n path units).
        let max_nodes = splits.iter().map(|s| s.len()).max().unwrap();
        let topo = nwdp::topo::line(max_nodes.max(splits.len()).max(2));
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::uniform(&topo);
        let vol = VolumeModel::internet2_baseline();
        let classes = vec![AnalysisClass::standard_set().remove(0)];
        let dep0 = build_units(&topo, &paths, &tm, &vol, &classes);

        // Handcraft units: reuse the first `splits.len()` units, assigning
        // the generated fractional splits over the first nodes.
        let mut dep = dep0.clone();
        dep.units.truncate(splits.len());
        let d: Vec<Vec<(NodeId, f64)>> = splits
            .iter()
            .zip(&mut dep.units)
            .map(|(split, unit)| {
                unit.nodes = (0..split.len()).map(NodeId).collect();
                split.iter().enumerate().map(|(j, &f)| (NodeId(j), f)).collect()
            })
            .collect();
        let manifest = nwdp::core::nids::generate_manifests(&dep, &d);
        // Every probe point is covered exactly once.
        let (lo, hi) = manifest.verify_coverage(&dep, 97);
        prop_assert_eq!((lo, hi), (1, 1));
        // Shares match the requested fractions.
        for (u, split) in splits.iter().enumerate() {
            for (j, &f) in split.iter().enumerate() {
                let got = manifest.share(u, NodeId(j));
                prop_assert!((got - f).abs() < 1e-9, "unit {} node {}: {} vs {}", u, j, got, f);
            }
        }
    }

    #[test]
    fn keyed_hash_consistent_across_directions(
        src in 1u32..0xffff, dst in 1u32..0xffff,
        sp in 1024u16..65000, dp in 1u16..1024, key in any::<u64>()
    ) {
        let t = FiveTuple::new(0x0a000000 | (src & 0xffff), 0x0a010000 | (dst & 0xffff), sp, dp, 6);
        let h = KeyedHasher::with_key(key);
        prop_assert_eq!(
            h.unit_hash(&t, FlowKeyKind::BiSession),
            h.unit_hash(&t.reversed(), FlowKeyKind::BiSession)
        );
        let u = h.unit_hash(&t, FlowKeyKind::UniFlow);
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn rounding_always_feasible(cap_frac in 0.05f64..0.5, seed in 0u64..500) {
        let topo = nwdp::topo::line(4);
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::uniform(&topo);
        let vol = VolumeModel::internet2_baseline();
        let n_rules = 5;
        let rates = MatchRates::uniform_001(n_rules, paths.all_pairs().count(), seed);
        let inst = NipsInstance::evaluation_setup(&topo, &paths, &tm, &vol, n_rules, cap_frac, rates);
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).unwrap();
        for strategy in [
            nwdp::core::nips::Strategy::ScaledFig9,
            nwdp::core::nips::Strategy::LpResolve,
            nwdp::core::nips::Strategy::GreedyLpResolve,
        ] {
            let sol = round_best_of(
                &inst,
                &relax,
                &RoundingOpts { strategy, iterations: 1, seed, ..Default::default() },
            );
            prop_assert!(sol.is_ok(), "{:?} failed to round: {:?}", strategy, sol.err());
            let sol = sol.unwrap();
            prop_assert!(inst.check_feasible(&sol.e, &sol.d, 1e-6).is_ok(),
                "{:?} produced infeasible solution", strategy);
            prop_assert!(sol.objective <= relax.objective * (1.0 + 1e-6));
        }
    }
}

/// Fractional splits summing to a redundancy level `r`, each share ≤ 1
/// (a node never wraps onto itself), carrying the FP drift of repeated
/// scaling — the exact shape `generate_manifests` consumes.
fn arb_redundant_split(r: usize) -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, (r + 1)..=6).prop_map(move |mut v| {
        // Scale the free (un-capped) shares until the total hits r; shares
        // that clip at 1.0 stay fixed. Terminates because the cap sum
        // (len > r) strictly exceeds the target.
        loop {
            let fixed: f64 = v.iter().filter(|&&x| x >= 1.0).sum();
            let free: f64 = v.iter().filter(|&&x| x < 1.0).sum();
            let target = r as f64 - fixed;
            if free <= 0.0 || target <= 0.0 {
                break;
            }
            let scale = target / free;
            let mut clipped = false;
            for x in v.iter_mut().filter(|x| **x < 1.0) {
                *x *= scale;
                if *x > 1.0 {
                    *x = 1.0;
                    clipped = true;
                }
            }
            if !clipped {
                break;
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §2.5 redundancy: the compiled hash ranges must tile `[0, r)` with
    /// no gap or overlap at hash-lattice resolution, for the wrapping
    /// r = 2 case as well as the plain partition, despite the FP drift
    /// accumulated by the running-range walk in `generate_manifests`.
    #[test]
    fn manifests_partition_under_redundancy(
        case in (1usize..=2).prop_flat_map(|r| {
            (Just(r), proptest::collection::vec(arb_redundant_split(r), 1..4))
        })
    ) {
        let (r, splits) = case;
        let max_nodes = splits.iter().map(|s| s.len()).max().unwrap();
        let topo = nwdp::topo::line(max_nodes.max(splits.len()).max(2));
        let paths = PathDb::shortest_paths(&topo);
        let tm = TrafficMatrix::uniform(&topo);
        let vol = VolumeModel::internet2_baseline();
        let classes = vec![AnalysisClass::standard_set().remove(0)];
        let dep0 = build_units(&topo, &paths, &tm, &vol, &classes);

        let mut dep = dep0.clone();
        dep.units.truncate(splits.len());
        let d: Vec<Vec<(NodeId, f64)>> = splits
            .iter()
            .zip(&mut dep.units)
            .map(|(split, unit)| {
                unit.nodes = (0..split.len()).map(NodeId).collect();
                split.iter().enumerate().map(|(j, &f)| (NodeId(j), f)).collect()
            })
            .collect();
        let manifest = nwdp::core::nids::generate_manifests(&dep, &d);

        // Exact multiplicity r on a mid-point grid.
        let (lo, hi) = manifest.verify_coverage(&dep, 127);
        prop_assert_eq!((lo, hi), (r, r), "grid coverage must be exactly {}", r);

        for (u, unit) in dep.units.iter().enumerate() {
            // Per-unit measure must sum to r (no lost or doubled mass).
            let total: f64 = unit.nodes.iter().map(|&j| manifest.share(u, j)).sum();
            prop_assert!((total - r as f64).abs() < 1e-9, "unit {}: total share {}", u, total);

            // Probe just inside every segment boundary: gaps or overlaps
            // produced by drift live at the seams, between grid points.
            // 1e-9 is ~4 ulps of the 2^-32 hash lattice the engine uses.
            let mut probes = Vec::new();
            for &j in &unit.nodes {
                if let Some(ranges) = manifest.range(u, j) {
                    for seg in ranges.segments() {
                        probes.push(seg.lo + 1e-9);
                        probes.push(seg.hi - 1e-9);
                    }
                }
            }
            for p in probes.into_iter().filter(|p| (0.0..1.0).contains(p)) {
                let covers = unit
                    .nodes
                    .iter()
                    .filter(|&&j| manifest.should_analyze(u, j, p))
                    .count();
                prop_assert_eq!(covers, r, "unit {} point {} covered {} times", u, p, covers);
            }
        }
    }
}
