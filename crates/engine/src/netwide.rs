//! Network-wide emulation harness (paper §2.4, "Network-wide evaluation").
//!
//! "From a network-wide trace, we generate traces that each node sees. For
//! the coordinated case, this includes both traffic originating/terminating
//! at a node and transit traffic. For the edge-only case, these consist of
//! traffic originating/terminating at each node."
//!
//! Each node's replay is an independent engine over its own slice of the
//! trace, so the per-node fan-out runs on scoped threads (see
//! [`nwdp_core::parallel`]). Per-node [`RunStats`] are merged back in node
//! order after the join, which keeps the result bit-identical to a serial
//! run for any `NWDP_THREADS` setting.

use crate::engine::{CoordContext, Engine, Placement, RunStats};
use crate::modules::{Alert, EngineError};
use nwdp_core::nids::SamplingManifest;
use nwdp_core::{parallel, NidsDeployment};
use nwdp_hash::KeyedHasher;
use nwdp_obs as obs;
use nwdp_topo::{NodeId, PathDb};
use nwdp_traffic::NetTrace;
use std::collections::BTreeSet;

/// Results of running one deployment scenario across all nodes.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    pub per_node: Vec<RunStats>,
    /// Union of alerts across the network (for equivalence checks).
    pub alerts: BTreeSet<Alert>,
}

impl NetworkRun {
    pub fn max_cpu(&self) -> u64 {
        self.per_node.iter().map(|s| s.cpu_cycles).max().unwrap_or(0)
    }

    pub fn max_mem(&self) -> u64 {
        self.per_node.iter().map(|s| s.mem_peak).max().unwrap_or(0)
    }

    pub fn total_cpu(&self) -> u64 {
        self.per_node.iter().map(|s| s.cpu_cycles).sum()
    }
}

fn class_names(dep: &NidsDeployment) -> Vec<String> {
    dep.classes.iter().map(|c| c.name.clone()).collect()
}

/// Replay every node's engine over its trace slice in parallel (one
/// independent engine per node; deterministic node-order merge).
fn replay_nodes(
    mode: &str,
    num_nodes: usize,
    run_node: impl Fn(NodeId) -> Result<RunStats, EngineError> + Sync,
) -> Result<NetworkRun, EngineError> {
    let per_node = parallel::par_map_n(num_nodes, |j| run_node(NodeId(j)))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let mut alerts = BTreeSet::new();
    for stats in &per_node {
        alerts.extend(stats.alerts.iter().cloned());
    }
    let run = NetworkRun { per_node, alerts };
    if obs::enabled() {
        flush_metrics(mode, &run);
    }
    Ok(run)
}

/// Publish one replay's per-node load profile to the metrics registry.
fn flush_metrics(mode: &str, run: &NetworkRun) {
    let s = obs::Scope::new("engine");
    s.counter_with("runs", &[("mode", mode)]).inc();
    s.gauge_with("max_cpu_cycles", &[("mode", mode)]).set_max(run.max_cpu() as f64);
    let mut per_class: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for st in &run.per_node {
        let node = st.node.0.to_string();
        let labels = [("mode", mode), ("node", node.as_str())];
        s.counter_with("packets", &labels).add(st.packets);
        s.counter_with("connections", &labels).add(st.connections as u64);
        s.counter_with("cpu_cycles", &labels).add(st.cpu_cycles);
        s.counter_with("fastpath_skipped", &labels).add(st.fastpath_skipped);
        s.counter_with("range_checks", &labels).add(st.range_checks);
        s.counter_with("range_hits", &labels).add(st.range_hits);
        s.gauge_with("range_hit_rate", &labels).set(st.range_hit_rate());
        for (class, cpu) in &st.per_module_cpu {
            *per_class.entry(class.as_str()).or_default() += cpu;
        }
    }
    for (class, cpu) in per_class {
        s.counter_with("class_cpu_cycles", &[("class", class), ("mode", mode)]).add(cpu);
    }
}

/// Edge-only deployment: every node independently runs stock Bro on the
/// traffic it originates or terminates.
pub fn run_edge_only(
    dep: &NidsDeployment,
    trace: &NetTrace,
    hasher: KeyedHasher,
) -> Result<NetworkRun, EngineError> {
    let names = class_names(dep);
    replay_nodes("edge_only", dep.num_nodes, |node| {
        let mut engine = Engine::new(node, Placement::Unmodified, &names, None, hasher)?;
        for s in trace.edge_sessions(node) {
            engine.process_session(s);
        }
        Ok(engine.stats())
    })
}

/// Coordinated network-wide deployment: every node runs the coordinated
/// engine (checks placed per the paper's final configuration) over all
/// on-path traffic, guided by the shared sampling manifest.
pub fn run_coordinated(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    paths: &PathDb,
    trace: &NetTrace,
    placement: Placement,
    hasher: KeyedHasher,
) -> Result<NetworkRun, EngineError> {
    assert_ne!(placement, Placement::Unmodified, "coordinated run needs a coordinated placement");
    let names = class_names(dep);
    replay_nodes("coordinated", dep.num_nodes, |node| {
        let coord = CoordContext::new(dep, manifest);
        let mut engine = Engine::new(node, placement, &names, Some(coord), hasher)?;
        for s in trace.onpath_sessions(paths, node) {
            engine.process_session(s);
        }
        Ok(engine.stats())
    })
}

/// A single standalone NIDS over the entire trace (the logical reference
/// the network-wide deployment must be equivalent to). One engine, one
/// node: the replay is inherently serial (every session flows through the
/// same connection table).
pub fn run_standalone_reference(
    dep: &NidsDeployment,
    trace: &NetTrace,
    hasher: KeyedHasher,
) -> Result<RunStats, EngineError> {
    let names = class_names(dep);
    let mut engine = Engine::new(NodeId(0), Placement::Unmodified, &names, None, hasher)?;
    for s in &trace.sessions {
        engine.process_session(s);
    }
    Ok(engine.stats())
}
