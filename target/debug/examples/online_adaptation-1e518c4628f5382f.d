/root/repo/target/debug/examples/online_adaptation-1e518c4628f5382f.d: examples/online_adaptation.rs Cargo.toml

/root/repo/target/debug/examples/libonline_adaptation-1e518c4628f5382f.rmeta: examples/online_adaptation.rs Cargo.toml

examples/online_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
