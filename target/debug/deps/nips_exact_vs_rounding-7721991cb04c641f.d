/root/repo/target/debug/deps/nips_exact_vs_rounding-7721991cb04c641f.d: tests/nips_exact_vs_rounding.rs

/root/repo/target/debug/deps/nips_exact_vs_rounding-7721991cb04c641f: tests/nips_exact_vs_rounding.rs

tests/nips_exact_vs_rounding.rs:
