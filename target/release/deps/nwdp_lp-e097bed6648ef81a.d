/root/repo/target/release/deps/nwdp_lp-e097bed6648ef81a.d: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs

/root/repo/target/release/deps/libnwdp_lp-e097bed6648ef81a.rlib: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs

/root/repo/target/release/deps/libnwdp_lp-e097bed6648ef81a.rmeta: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs

crates/lp/src/lib.rs:
crates/lp/src/check.rs:
crates/lp/src/flow.rs:
crates/lp/src/milp.rs:
crates/lp/src/model.rs:
crates/lp/src/presolve.rs:
crates/lp/src/rowgen.rs:
crates/lp/src/simplex/mod.rs:
crates/lp/src/simplex/dense.rs:
crates/lp/src/simplex/sparse.rs:
crates/lp/src/solution.rs:
