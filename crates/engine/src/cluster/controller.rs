//! The controller actor: heartbeat monitoring, epoch-fenced manifest
//! distribution with retry/backoff, and the repair hand-off.
//!
//! The controller is the only place cluster-wide decisions are made, and
//! it always runs serially in the driver thread — its seeded jitter RNG
//! and every queue/transport interaction happen in deterministic event
//! order. Decision rules:
//!
//! - **Detection.** A node is declared failed either by the
//!   [`HeartbeatMonitor`] (silence past the miss window + grace) or by
//!   exhausting the manifest-push retry budget. Both causes land in the
//!   same declared set and trigger the same repair path.
//! - **Repair.** Declared nodes are handed to the PR 4 repair machinery:
//!   `greedy_repair` immediately (exact range arithmetic, no solver), and
//!   optionally an LP re-optimization one heartbeat later
//!   ([`ClusterConfig::lp_followup`]). Every candidate passes
//!   [`validate_manifests_excluding`] — with the accumulated
//!   unrecoverable units exempted — before it may become an epoch; a
//!   rejected candidate leaves the old epoch serving.
//! - **Distribution.** Each new epoch is pushed to every live node with
//!   per-attempt timeouts, exponential backoff, and seeded jitter.
//!   Retries are lazily cancelled: a `RetryCheck` that fires after the
//!   node acked, the node was declared failed, or the epoch was
//!   superseded simply lapses. A `StaleReject` whose `pushed` equals the
//!   current epoch counts as an ack — the node provably runs that epoch,
//!   so a lost ack cannot retry forever.
//! - **Recovery.** Any heartbeat from a declared node clears the
//!   declaration (healed partition or false suspicion under loss) and
//!   re-pushes the current epoch so the node re-fences forward; its old
//!   hash ranges are *not* rebalanced back — the node rejoins as a spare,
//!   and re-balancing is the reload loop's job, not the failure path's.

use super::clock::{EventQueue, Timer};
use super::transport::{SendOutcome, Transport};
use super::{
    Addr, ClusterConfig, ClusterError, Detection, DetectionCause, EpochReport, Msg, NetStats,
};
use nwdp_core::nids::lp::{NidsLpConfig, NodeCaps};
use nwdp_core::nids::manifest::{validate_manifests_excluding, CapacityCeiling, SamplingManifest};
use nwdp_core::resilience::repair::{greedy_repair, lp_repair};
use nwdp_core::resilience::HeartbeatMonitor;
use nwdp_core::units::NidsDeployment;
use nwdp_obs as obs;
use nwdp_topo::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

pub(super) struct Controller<'a> {
    dep: &'a NidsDeployment,
    caps: &'a [NodeCaps],
    cfg: &'a ClusterConfig,
    monitor: HeartbeatMonitor,
    /// Jitter RNG for retry timeouts; all draws serial in event order.
    rng: StdRng,
    /// Current epoch and its validated manifest.
    pub epoch: u64,
    pub manifest: Arc<SamplingManifest>,
    /// Highest epoch acked per node.
    acked: Vec<u64>,
    /// Union of monitor- and retry-declared failures.
    declared: Vec<bool>,
    /// Unit indices legitimately without coverage (accumulated
    /// unrecoverable/degraded units) — exempted from validation.
    skip_units: Vec<usize>,
    pub epochs: Vec<EpochReport>,
    pub detections: Vec<Detection>,
}

impl<'a> Controller<'a> {
    pub fn new(
        dep: &'a NidsDeployment,
        caps: &'a [NodeCaps],
        initial: Arc<SamplingManifest>,
        cfg: &'a ClusterConfig,
        grace: f64,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        let monitor = HeartbeatMonitor::new(cfg.health, dep.num_nodes, grace, 0.0)
            .map_err(ClusterError::Health)?;
        Ok(Controller {
            dep,
            caps,
            cfg,
            monitor,
            rng: StdRng::seed_from_u64(seed ^ 0xc011_7801_01e7_0b0e),
            epoch: 1,
            manifest: initial,
            acked: vec![1; dep.num_nodes],
            declared: vec![false; dep.num_nodes],
            skip_units: Vec::new(),
            epochs: Vec::new(),
            detections: Vec::new(),
        })
    }

    pub(super) fn declared_nodes(&self) -> Vec<NodeId> {
        (0..self.declared.len()).filter(|&j| self.declared[j]).map(NodeId).collect()
    }

    /// Per-attempt timeout with exponential backoff and seeded jitter.
    fn timeout(&mut self, attempt: u32) -> f64 {
        let base = self.cfg.backoff_base * self.cfg.backoff_factor.powi(attempt as i32);
        base * self.rng.random_range(0.9..1.1)
    }

    /// Send one manifest push and arm its per-attempt timeout.
    fn push_to(
        &mut self,
        node: NodeId,
        attempt: u32,
        now: f64,
        q: &mut EventQueue,
        tx: &mut Transport,
        stats: &mut NetStats,
    ) {
        let msg = Msg::ManifestPush { epoch: self.epoch, manifest: self.manifest.clone(), attempt };
        stats.sends += 1;
        match tx.send(node, now) {
            SendOutcome::Delivered { at } => {
                q.push(at, Timer::Deliver { to: Addr::Node(node), msg })
            }
            SendOutcome::DroppedLoss => stats.drops_loss += 1,
            SendOutcome::DroppedCut => stats.drops_cut += 1,
        }
        let t = self.timeout(attempt);
        q.push(now + t, Timer::RetryCheck { node, epoch: self.epoch, attempt });
    }

    /// Adopt a validated candidate as the next epoch and distribute it to
    /// every live node.
    fn adopt_epoch(
        &mut self,
        manifest: SamplingManifest,
        now: f64,
        q: &mut EventQueue,
        tx: &mut Transport,
        stats: &mut NetStats,
    ) {
        self.epoch += 1;
        self.manifest = Arc::new(manifest);
        let targets: Vec<NodeId> =
            (0..self.dep.num_nodes).map(NodeId).filter(|n| !self.declared[n.index()]).collect();
        self.epochs.push(EpochReport {
            epoch: self.epoch,
            created_at: now,
            targets: targets.len(),
            acked: 0,
            converged_at: None,
        });
        obs::trace_event!("net.epoch", epoch = self.epoch, at = now, targets = targets.len());
        for node in targets {
            self.push_to(node, 0, now, q, tx, stats);
        }
    }

    /// Greedy repair for the current declared set, gated by validation.
    fn repair(&mut self, now: f64, q: &mut EventQueue, tx: &mut Transport, stats: &mut NetStats) {
        let failed = self.declared_nodes();
        let out = greedy_repair(self.dep, &self.manifest, self.caps, &failed);
        let mut skip = self.skip_units.clone();
        skip.extend(out.unrecoverable.iter().copied());
        skip.sort_unstable();
        skip.dedup();
        let ceiling =
            self.cfg.max_load.map(|max_load| CapacityCeiling { caps: self.caps, max_load });
        match validate_manifests_excluding(
            self.dep,
            &out.manifest,
            self.cfg.redundancy,
            ceiling.as_ref(),
            &skip,
        ) {
            Ok(()) => {
                self.skip_units = skip;
                stats.repairs += 1;
                self.adopt_epoch(out.manifest, now, q, tx, stats);
                if self.cfg.lp_followup {
                    q.push(
                        now + self.cfg.health.heartbeat_interval,
                        Timer::LpFollowup { after_epoch: self.epoch },
                    );
                }
            }
            Err(e) => {
                // The gate held: the old epoch keeps serving.
                stats.repairs_rejected += 1;
                obs::trace_event!("net.repair_rejected", at = now, reason = format!("{e}"));
            }
        }
    }

    /// Deferred LP re-optimization over the survivor set.
    pub fn on_lp_followup(
        &mut self,
        after_epoch: u64,
        now: f64,
        q: &mut EventQueue,
        tx: &mut Transport,
        stats: &mut NetStats,
    ) {
        if after_epoch != self.epoch {
            return; // superseded by a newer repair
        }
        let failed = self.declared_nodes();
        let mut lp_cfg = NidsLpConfig::homogeneous(self.dep.num_nodes, self.caps[0]);
        lp_cfg.caps = self.caps.to_vec();
        lp_cfg.redundancy = self.cfg.redundancy;
        match lp_repair(self.dep, &self.manifest, &lp_cfg, &failed, None) {
            Ok(lp) => {
                let mut skip = self.skip_units.clone();
                skip.extend(lp.degraded_units.iter().copied());
                skip.sort_unstable();
                skip.dedup();
                let ceiling =
                    self.cfg.max_load.map(|max_load| CapacityCeiling { caps: self.caps, max_load });
                if validate_manifests_excluding(
                    self.dep,
                    &lp.manifest,
                    self.cfg.redundancy,
                    ceiling.as_ref(),
                    &skip,
                )
                .is_ok()
                {
                    self.skip_units = skip;
                    stats.lp_followups += 1;
                    self.adopt_epoch(lp.manifest, now, q, tx, stats);
                }
            }
            Err(_) => stats.lp_failures += 1,
        }
    }

    fn declare(
        &mut self,
        node: NodeId,
        now: f64,
        cause: DetectionCause,
        q: &mut EventQueue,
        tx: &mut Transport,
        stats: &mut NetStats,
    ) {
        if self.declared[node.index()] {
            return;
        }
        self.declared[node.index()] = true;
        self.detections.push(Detection { node, declared_at: now, cause });
        obs::trace_event!("net.declared", node = node.0, at = now);
        self.repair(now, q, tx, stats);
    }

    /// Periodic monitor sweep on the heartbeat grid.
    pub fn on_sweep(
        &mut self,
        now: f64,
        q: &mut EventQueue,
        tx: &mut Transport,
        stats: &mut NetStats,
    ) {
        for node in self.monitor.sweep(now) {
            self.declare(node, now, DetectionCause::MissedHeartbeats, q, tx, stats);
        }
    }

    /// Per-attempt push timeout fired; resolve lazily.
    #[allow(clippy::too_many_arguments)]
    pub fn on_retry_check(
        &mut self,
        node: NodeId,
        epoch: u64,
        attempt: u32,
        now: f64,
        q: &mut EventQueue,
        tx: &mut Transport,
        stats: &mut NetStats,
    ) {
        if epoch != self.epoch || self.declared[node.index()] || self.acked[node.index()] >= epoch {
            return; // superseded, declared elsewhere, or already acked
        }
        if attempt >= self.cfg.retry_budget {
            stats.timeouts += 1;
            self.declare(node, now, DetectionCause::RetryExhausted, q, tx, stats);
        } else {
            stats.retries += 1;
            self.push_to(node, attempt + 1, now, q, tx, stats);
        }
    }

    fn note_ack(&mut self, from: NodeId, epoch: u64, now: f64) {
        let j = from.index();
        if epoch > self.acked[j] {
            self.acked[j] = epoch;
            if let Some(report) = self.epochs.iter_mut().find(|r| r.epoch == epoch) {
                report.acked += 1;
                if report.acked >= report.targets && report.converged_at.is_none() {
                    report.converged_at = Some(now);
                    obs::trace_event!(
                        "net.converged",
                        epoch = epoch,
                        at = now,
                        latency = now - report.created_at
                    );
                }
            }
        }
    }

    /// One message delivered to the controller.
    pub fn on_msg(
        &mut self,
        msg: Msg,
        now: f64,
        q: &mut EventQueue,
        tx: &mut Transport,
        stats: &mut NetStats,
    ) {
        match msg {
            Msg::Heartbeat { from, .. } => {
                stats.heartbeats += 1;
                let was_declared = self.declared[from.index()];
                self.monitor.on_heartbeat(from, now);
                if was_declared {
                    // Liveness proof: healed partition or false suspicion.
                    self.declared[from.index()] = false;
                    stats.recoveries += 1;
                    obs::trace_event!("net.recovered", node = from.0, at = now);
                    if self.acked[from.index()] < self.epoch {
                        self.push_to(from, 0, now, q, tx, stats);
                    }
                }
            }
            Msg::InstallAck { from, epoch } => self.note_ack(from, epoch, now),
            Msg::StaleReject { from, pushed, current } => {
                // The node already runs `current ≥ pushed`; if that is the
                // epoch we are distributing, the reject IS the ack (covers
                // lost-ack retransmissions).
                if current >= pushed && pushed == self.epoch {
                    self.note_ack(from, pushed, now);
                }
            }
            Msg::AlertReport { count, .. } => {
                // Forwarded alert volume. Deliberately not a liveness
                // proof — detection stays a heartbeat-only contract.
                stats.alerts_forwarded += count;
            }
            Msg::ManifestPush { .. } => {} // never addressed to us
        }
    }
}
