//! Workspace property tests for the manifest validation gate (ISSUE 8):
//! over random topologies, every LP-produced manifest must pass
//! [`validate_manifests`], and every corruption a buggy reconfiguration
//! could introduce — coverage gaps, overlapping ownership, references to
//! unknown units or classes, ranges on nodes that never observe the
//! traffic — must be rejected with the matching typed error. The gate is
//! what keeps a hot reload from ever swapping a malformed manifest into a
//! live engine, so "mutation implies rejection" is the property that
//! matters, not any specific hand-picked example.

use nwdp::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// A random small topology: line, ring, or Waxman (connected by
/// construction in `nwdp::topo`).
fn arb_topology() -> impl proptest::strategy::Strategy<Value = Topology> {
    (0usize..3, 4usize..9, 0u64..1000).prop_map(|(kind, n, seed)| match kind {
        0 => nwdp::topo::line(n),
        1 => nwdp::topo::ring(n),
        _ => nwdp::topo::waxman("prop", n, 0.6, 0.5, seed),
    })
}

/// Returns the deployment, LP config, manifest, and the LP's optimal max
/// load — the natural acceptance ceiling (the LP *minimizes* the max
/// load but does not cap it at 1.0, so on tiny topologies the optimum
/// can exceed the homogeneous capacity).
fn deployment_for(topo: &Topology) -> (NidsDeployment, NidsLpConfig, SamplingManifest, f64) {
    let paths = PathDb::shortest_paths(topo);
    let tm = TrafficMatrix::uniform(topo);
    let vol = VolumeModel::internet2_baseline();
    let dep = build_units(topo, &paths, &tm, &vol, &AnalysisClass::standard_set());
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).expect("generous caps always solve");
    let manifest = generate_manifests(&dep, &assignment.d);
    (dep, cfg, manifest, assignment.max_load)
}

/// Flatten a manifest into `(node, entry)` pairs for mutate-and-rebuild.
fn entries_of(m: &SamplingManifest) -> Vec<(NodeId, ManifestEntry)> {
    let mut out = Vec::new();
    for j in 0..m.num_nodes() {
        for e in m.node_entries(NodeId(j)) {
            out.push((NodeId(j), e.clone()));
        }
    }
    out
}

fn rebuild(num_nodes: usize, entries: Vec<(NodeId, ManifestEntry)>) -> SamplingManifest {
    SamplingManifest::from_entries(num_nodes, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean LP manifests validate; every mutation class is rejected with
    /// its typed error. The victim entry is picked deterministically from
    /// the seed so failures minimize.
    #[test]
    fn lp_manifests_validate_and_every_corruption_is_rejected(
        case in (arb_topology(), 0usize..10_000)
    ) {
        let (topo, pick) = case;
        let (dep, cfg, manifest, opt_load) = deployment_for(&topo);
        let ceiling = CapacityCeiling { caps: &cfg.caps, max_load: opt_load + 1e-6 };

        // The gate accepts what the LP + manifest generator produce.
        prop_assert_eq!(
            validate_manifests(&dep, &manifest, cfg.redundancy, Some(&ceiling)),
            Ok(())
        );

        let entries = entries_of(&manifest);
        prop_assert!(!entries.is_empty());
        let victim = pick % entries.len();

        // Mutation 1: truncate the victim's range to half its measure —
        // a coverage gap in that unit.
        {
            let mut mutated = entries.clone();
            let (_, e) = &mut mutated[victim];
            let unit = e.unit;
            e.ranges = e.ranges.take_measure(e.ranges.measure() * 0.5);
            let m = rebuild(dep.num_nodes, mutated);
            match validate_manifests(&dep, &m, cfg.redundancy, None) {
                Err(ManifestValidationError::CoverageGap { unit: u, .. }) =>
                    prop_assert_eq!(u, unit, "gap must be attributed to the mutated unit"),
                other => prop_assert!(false, "gap not caught: {:?}", other),
            }
        }

        // Mutation 2: hand the victim's unit *in full* to another
        // eligible node as well — multiplicity 2 where r = 1 demands 1.
        {
            let (owner, e) = &entries[victim];
            let unit = &dep.units[e.unit];
            if let Some(&other) = unit.nodes.iter().find(|j| *j != owner) {
                let mut dup = e.clone();
                dup.ranges = RangeSet::interval(0.0, 1.0);
                let mut mutated = entries.clone();
                // from_entries forbids duplicate (unit, node) pairs, so
                // drop any existing entry `other` holds for this unit.
                mutated.retain(|(j, me)| !(me.unit == e.unit && *j == other));
                mutated.push((other, dup));
                let m = rebuild(dep.num_nodes, mutated);
                match validate_manifests(&dep, &m, cfg.redundancy, None) {
                    Err(ManifestValidationError::CoverageOverlap { unit: u, .. }) =>
                        prop_assert_eq!(u, e.unit),
                    other => prop_assert!(false, "overlap not caught: {:?}", other),
                }
            }
        }

        // Mutation 3: point the victim at a unit index past the
        // deployment's unit list.
        {
            let mut mutated = entries.clone();
            mutated[victim].1.unit = dep.units.len() + 7;
            let m = rebuild(dep.num_nodes, mutated);
            prop_assert!(matches!(
                validate_manifests(&dep, &m, cfg.redundancy, None),
                Err(ManifestValidationError::UnknownUnit { .. })
            ));
        }

        // Mutation 4: point the victim at a class (module) the
        // deployment does not ship.
        {
            let mut mutated = entries.clone();
            mutated[victim].1.class = dep.classes.len();
            let m = rebuild(dep.num_nodes, mutated);
            prop_assert!(matches!(
                validate_manifests(&dep, &m, cfg.redundancy, None),
                Err(ManifestValidationError::UnknownClass { .. })
            ));
        }

        // Mutation 5: move the victim's responsibility onto a node that
        // never observes the unit's traffic.
        {
            let (owner, e) = &entries[victim];
            let unit = &dep.units[e.unit];
            if let Some(foreign) =
                (0..dep.num_nodes).map(NodeId).find(|j| !unit.nodes.contains(j))
            {
                let mut mutated = entries.clone();
                mutated.retain(|(j, me)| !(me.unit == e.unit && j == owner));
                mutated.push((foreign, e.clone()));
                let m = rebuild(dep.num_nodes, mutated);
                prop_assert!(matches!(
                    validate_manifests(&dep, &m, cfg.redundancy, None),
                    Err(ManifestValidationError::ForeignNode { .. })
                ));
            }
        }

        // Mutation 6: starve the busiest node's capacity — the ceiling
        // check must reject even a perfectly-covering manifest.
        {
            let mut caps = cfg.caps.clone();
            let busiest = (0..dep.num_nodes)
                .max_by(|&a, &b| {
                    let sa: f64 =
                        (0..dep.units.len()).map(|u| manifest.share(u, NodeId(a))).sum();
                    let sb: f64 =
                        (0..dep.units.len()).map(|u| manifest.share(u, NodeId(b))).sum();
                    sa.total_cmp(&sb)
                })
                .expect("non-empty");
            caps[busiest] = NodeCaps { cpu: 1.0, mem: 1.0 };
            let tight = CapacityCeiling { caps: &caps, max_load: 1.0 };
            prop_assert!(matches!(
                validate_manifests(&dep, &manifest, cfg.redundancy, Some(&tight)),
                Err(ManifestValidationError::CapacityExceeded { .. })
            ));
        }
    }
}
