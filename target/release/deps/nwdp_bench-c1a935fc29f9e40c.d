/root/repo/target/release/deps/nwdp_bench-c1a935fc29f9e40c.d: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs

/root/repo/target/release/deps/libnwdp_bench-c1a935fc29f9e40c.rlib: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs

/root/repo/target/release/deps/libnwdp_bench-c1a935fc29f9e40c.rmeta: crates/bench/src/lib.rs crates/bench/src/extensions.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig5.rs crates/bench/src/fig678.rs crates/bench/src/opttime.rs crates/bench/src/output.rs crates/bench/src/scenario.rs

crates/bench/src/lib.rs:
crates/bench/src/extensions.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig5.rs:
crates/bench/src/fig678.rs:
crates/bench/src/opttime.rs:
crates/bench/src/output.rs:
crates/bench/src/scenario.rs:
