/root/repo/target/release/deps/nwdp_engine-8ae543e47a89190c.d: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

/root/repo/target/release/deps/libnwdp_engine-8ae543e47a89190c.rlib: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

/root/repo/target/release/deps/libnwdp_engine-8ae543e47a89190c.rmeta: crates/engine/src/lib.rs crates/engine/src/ac.rs crates/engine/src/conn.rs crates/engine/src/cost.rs crates/engine/src/engine.rs crates/engine/src/modules.rs crates/engine/src/netwide.rs

crates/engine/src/lib.rs:
crates/engine/src/ac.rs:
crates/engine/src/conn.rs:
crates/engine/src/cost.rs:
crates/engine/src/engine.rs:
crates/engine/src/modules.rs:
crates/engine/src/netwide.rs:
