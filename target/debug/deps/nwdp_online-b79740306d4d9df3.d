/root/repo/target/debug/deps/nwdp_online-b79740306d4d9df3.d: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

/root/repo/target/debug/deps/nwdp_online-b79740306d4d9df3: crates/online/src/lib.rs crates/online/src/adversary.rs crates/online/src/fpl.rs

crates/online/src/lib.rs:
crates/online/src/adversary.rs:
crates/online/src/fpl.rs:
