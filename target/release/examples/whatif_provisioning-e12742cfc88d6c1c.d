/root/repo/target/release/examples/whatif_provisioning-e12742cfc88d6c1c.d: examples/whatif_provisioning.rs

/root/repo/target/release/examples/whatif_provisioning-e12742cfc88d6c1c: examples/whatif_provisioning.rs

examples/whatif_provisioning.rs:
