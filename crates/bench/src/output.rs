//! Result output: CSV files plus aligned ASCII tables on stdout, and the
//! repo-root `BENCH_*.json` trajectory files that track bench results
//! across commits.

use nwdp_obs as obs;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple results table: named columns, rows of cells.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned ASCII table.
    pub fn ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> =
            self.columns.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as CSV.
    pub fn csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write `<name>.csv` under `dir` and print the ASCII table.
    pub fn emit(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.csv())?;
        println!("{}", self.ascii());
        Ok(())
    }
}

/// Append one entry to a trajectory file (`{"version":1,"runs":[...]}`),
/// creating it if absent. A 1-based `seq` field is injected; the new
/// entry's sequence number is returned.
///
/// A file that exists but does not parse as a trajectory is **never
/// overwritten** (an earlier version silently reset `runs` to empty and
/// the next write destroyed the whole bench history): the corrupt
/// original is copied to `<path>.bak` and an `InvalidData` error names
/// both paths, so the caller can warn and skip the append.
pub fn append_trajectory(path: &Path, fields: Vec<(&str, obs::Json)>) -> std::io::Result<usize> {
    let mut runs: Vec<obs::Json> = match fs::read_to_string(path) {
        Ok(text) => match obs::parse_json(&text) {
            Ok(json) => match json.get("runs") {
                Some(obs::Json::Arr(runs)) => runs.clone(),
                _ => return preserve_corrupt(path, "no \"runs\" array"),
            },
            Err(e) => return preserve_corrupt(path, &format!("unparseable JSON: {e}")),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let seq = runs.len() + 1;
    let mut entry = BTreeMap::new();
    entry.insert("seq".to_string(), obs::Json::Num(seq as f64));
    for (k, v) in fields {
        entry.insert(k.to_string(), v);
    }
    runs.push(obs::Json::Obj(entry));
    let mut root = BTreeMap::new();
    root.insert("version".to_string(), obs::Json::Num(1.0));
    root.insert("runs".to_string(), obs::Json::Arr(runs));
    fs::write(path, obs::Json::Obj(root).render() + "\n")?;
    Ok(seq)
}

/// Copy an unparseable trajectory file aside and refuse the append.
fn preserve_corrupt(path: &Path, why: &str) -> std::io::Result<usize> {
    let bak = std::path::PathBuf::from(format!("{}.bak", path.display()));
    fs::copy(path, &bak)?;
    Err(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!(
            "trajectory {} is corrupt ({why}); original preserved at {}, append skipped",
            path.display(),
            bak.display()
        ),
    ))
}

/// Format helpers.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_and_csv_render() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["22".into(), "y,z".into()]);
        let a = t.ascii();
        assert!(a.contains("demo"));
        assert!(a.contains("long_column"));
        let c = t.csv();
        assert!(c.contains("\"y,z\""));
        assert_eq!(c.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
