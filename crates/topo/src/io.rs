//! Plain-text topology serialization.
//!
//! A minimal line-oriented format so users can load their own networks
//! (e.g. real Rocketfuel exports) without extra dependencies:
//!
//! ```text
//! # comment
//! topology MyNet
//! node Seattle 3.4
//! node Denver 2.5
//! link Seattle Denver 1650
//! ```

use crate::graph::Topology;

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `(line number, message)`
    Syntax(usize, String),
    UnknownNode(usize, String),
    DuplicateNode(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax(l, m) => write!(f, "line {l}: {m}"),
            ParseError::UnknownNode(l, n) => write!(f, "line {l}: unknown node '{n}'"),
            ParseError::DuplicateNode(l, n) => write!(f, "line {l}: duplicate node '{n}'"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a topology to the text format.
pub fn to_text(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str(&format!("topology {}\n", topo.name));
    for n in topo.nodes() {
        let node = topo.node(n);
        out.push_str(&format!("node {} {}\n", node.name, node.population));
    }
    for l in topo.links() {
        out.push_str(&format!(
            "link {} {} {}\n",
            topo.node(l.a).name,
            topo.node(l.b).name,
            l.weight
        ));
    }
    out
}

/// Parse the text format into a topology.
pub fn from_text(text: &str) -> Result<Topology, ParseError> {
    let mut topo = Topology::new("unnamed");
    let mut seen = std::collections::HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("topology") => {
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(ParseError::Syntax(lineno, "topology needs a name".into()));
                }
                topo.name = name;
            }
            Some("node") => {
                let name = parts
                    .next()
                    .ok_or_else(|| ParseError::Syntax(lineno, "node needs a name".into()))?;
                let pop: f64 = parts
                    .next()
                    .ok_or_else(|| ParseError::Syntax(lineno, "node needs a population".into()))?
                    .parse()
                    .map_err(|_| ParseError::Syntax(lineno, "bad population".into()))?;
                if pop < 0.0 || !pop.is_finite() {
                    return Err(ParseError::Syntax(lineno, "population must be finite ≥ 0".into()));
                }
                if seen.contains_key(name) {
                    return Err(ParseError::DuplicateNode(lineno, name.to_string()));
                }
                let id = topo.add_node(name, pop);
                seen.insert(name.to_string(), id);
            }
            Some("link") => {
                let a = parts
                    .next()
                    .ok_or_else(|| ParseError::Syntax(lineno, "link needs two nodes".into()))?;
                let b = parts
                    .next()
                    .ok_or_else(|| ParseError::Syntax(lineno, "link needs two nodes".into()))?;
                let w: f64 = parts
                    .next()
                    .ok_or_else(|| ParseError::Syntax(lineno, "link needs a weight".into()))?
                    .parse()
                    .map_err(|_| ParseError::Syntax(lineno, "bad weight".into()))?;
                if w <= 0.0 || !w.is_finite() {
                    return Err(ParseError::Syntax(lineno, "weight must be finite > 0".into()));
                }
                let &ia =
                    seen.get(a).ok_or_else(|| ParseError::UnknownNode(lineno, a.to_string()))?;
                let &ib =
                    seen.get(b).ok_or_else(|| ParseError::UnknownNode(lineno, b.to_string()))?;
                if ia == ib {
                    return Err(ParseError::Syntax(lineno, "self links not allowed".into()));
                }
                topo.add_link(ia, ib, w);
            }
            Some(other) => {
                return Err(ParseError::Syntax(lineno, format!("unknown directive '{other}'")))
            }
            None => unreachable!("empty lines filtered"),
        }
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::internet2;

    #[test]
    fn round_trip_internet2() {
        let orig = internet2();
        let text = to_text(&orig);
        let back = from_text(&text).unwrap();
        assert_eq!(back.name, orig.name);
        assert_eq!(back.num_nodes(), orig.num_nodes());
        assert_eq!(back.num_links(), orig.num_links());
        for n in orig.nodes() {
            assert_eq!(back.node(n).name, orig.node(n).name);
            assert_eq!(back.population(n), orig.population(n));
        }
        for (a, b) in back.links().iter().zip(orig.links()) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = from_text("# hi\n\ntopology T\nnode a 1\nnode b 2\n# mid\nlink a b 3\n").unwrap();
        assert_eq!(t.name, "T");
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_links(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            from_text("node a 1\nlink a ghost 1\n"),
            Err(ParseError::UnknownNode(2, _))
        ));
        assert!(matches!(from_text("node a 1\nnode a 2\n"), Err(ParseError::DuplicateNode(2, _))));
        assert!(matches!(from_text("frob x\n"), Err(ParseError::Syntax(1, _))));
        assert!(matches!(from_text("node a -3\n"), Err(ParseError::Syntax(1, _))));
        assert!(matches!(
            from_text("node a 1\nnode b 1\nlink a b -2\n"),
            Err(ParseError::Syntax(3, _))
        ));
        assert!(matches!(from_text("node a 1\nlink a a 1\n"), Err(ParseError::Syntax(2, _))));
    }

    #[test]
    fn parsed_topology_is_usable() {
        let t = from_text(
            "topology ring\nnode a 1\nnode b 1\nnode c 1\nlink a b 1\nlink b c 1\nlink c a 1\n",
        )
        .unwrap();
        assert!(t.is_connected());
        let db = crate::routing::PathDb::shortest_paths(&t);
        assert_eq!(db.all_pairs().count(), 6);
    }
}
