//! `repro cluster` — fault-injected convergence of the distributed
//! control plane (ISSUE 9).
//!
//! Sweeps background link loss over the standard Internet2 / 9-module
//! deployment while a fixed fault script runs on the replay clock: node 3
//! crashes at t = 0.37 and node 7 is partitioned away over [0.5, 0.75).
//! Each point drives [`nwdp_engine::run_cluster`] — heartbeats, misses,
//! epoch-fenced manifest pushes with retry/backoff, greedy repair on
//! declaration — and the run asserts the ISSUE 9 acceptance criteria
//! directly:
//!
//! - the crash is **detected** from actually missed heartbeats no later
//!   than the closed-form [`HealthConfig::detect_at`] prediction plus the
//!   worst-case detection delay and transport grace;
//! - ground-truth **coverage never drops** below the greedy repair bound
//!   for the set of nodes that were ever declared failed;
//! - **zero stale-epoch manifests are ever live**: every node's install
//!   log is strictly monotone in the epoch number, and every node still
//!   trusted at the horizon runs the final epoch.
//!
//! Knobs (each falls back with a warn-once + `config.invalid_env` count
//! on unusable values): `NWDP_NET_LOSS` pins the sweep to one loss
//! fraction in `[0, 1)`, `NWDP_NET_DELAY` sets the max one-way delay in
//! replay-clock units, `NWDP_NET_RETRY` the push retry budget, and
//! `NWDP_NET_BACKOFF` the base retry timeout.
//!
//! Results go to `results/cluster_convergence.csv` (per loss point) and
//! `results/cluster_epochs.csv` (per epoch), and the canonical 10%-loss
//! point is appended to the repo-root `BENCH_cluster.json` trajectory.

use crate::output::{f2, f4, Table};
use crate::scenario::{default_caps, NidsContext};
use crate::Scale;
use nwdp_core::parallel;
use nwdp_core::resilience::{manifest_gap_fraction, FaultPlan, HealthConfig, Partition};
use nwdp_engine::{run_cluster, ClusterConfig, ClusterRun};
use nwdp_obs as obs;
use nwdp_topo::NodeId;
use std::path::Path;
use std::time::Instant;

/// The scripted faults every loss point shares.
const CRASH_NODE: NodeId = NodeId(3);
const CRASH_AT: f64 = 0.37;
const PART_NODE: NodeId = NodeId(7);
const PART_FROM: f64 = 0.5;
const PART_UNTIL: f64 = 0.75;
const PLAN_SEED: u64 = 19;

/// One loss point of the convergence sweep.
#[derive(Debug)]
pub struct ClusterPoint {
    pub loss: f64,
    pub run: ClusterRun,
    pub wall_s: f64,
    /// Closed-form grid prediction for the crash detection.
    pub predicted_detect: f64,
    /// When the crash was actually declared from missed heartbeats.
    pub detected_at: f64,
    /// `1 - Σ blind gaps` over every node ever declared failed — the
    /// greedy repair bound the coverage floor is held to.
    pub repair_bound: f64,
}

/// The whole sweep plus the effective knob values.
#[derive(Debug)]
pub struct ClusterBench {
    pub points: Vec<ClusterPoint>,
    pub retry_budget: u32,
    pub backoff_base: f64,
    pub delay_max: f64,
    pub threads: usize,
}

/// `var` as an `f64` in `[lo, hi)` when set and usable, else `default`
/// (with the warn-once + counter contract of `NWDP_SHARDS`).
fn f64_from_env(var: &str, default: f64, lo: f64, hi: f64, expecting: &str) -> f64 {
    let Some(raw) = std::env::var_os(var) else { return default };
    let raw = raw.to_string_lossy().into_owned();
    match raw.trim().parse::<f64>() {
        Ok(v) if v >= lo && v < hi => v,
        _ => {
            parallel::note_invalid_env_expecting(var, &raw, expecting);
            default
        }
    }
}

/// The loss sweep: pinned to `NWDP_NET_LOSS` when set, else scale-sized.
fn loss_points(scale: Scale) -> Vec<f64> {
    if std::env::var_os("NWDP_NET_LOSS").is_some() {
        return vec![f64_from_env("NWDP_NET_LOSS", 0.1, 0.0, 1.0, "a loss fraction in [0, 1)")];
    }
    match scale {
        Scale::Quick => vec![0.0, 0.1],
        Scale::Full => vec![0.0, 0.02, 0.05, 0.1, 0.2],
    }
}

/// Run the convergence sweep at `scale`.
pub fn run(scale: Scale) -> ClusterBench {
    let delay_max =
        f64_from_env("NWDP_NET_DELAY", 0.004, 1e-6, 0.05, "a one-way delay in (0, 0.05)");
    let retry_budget = parallel::env_count("NWDP_NET_RETRY").unwrap_or(3).clamp(1, 16) as u32;
    let backoff_base =
        f64_from_env("NWDP_NET_BACKOFF", 0.025, 1e-4, 0.5, "a base timeout in (0, 0.5)");

    let ctx = NidsContext::internet2();
    let dep = ctx.deployment(9);
    let (_assignment, manifest) = ctx.manifests(&dep);
    let caps = vec![default_caps(); dep.num_nodes];

    let mut cfg = ClusterConfig::default();
    cfg.health.miss_threshold = 4;
    cfg.retry_budget = retry_budget;
    cfg.backoff_base = backoff_base;
    // Alert forwarding rides along only when the alert plane is on: the
    // extra messages advance the transport RNG stream, so turning them on
    // unconditionally would break bit-identity with earlier commits.
    if obs::alert_enabled() {
        cfg.alert_every = 2;
    }

    // Metrics stay on for the runs (restored after): the `net.*` counters
    // and the `net.coverage` / `net.convergence` series are part of the
    // artifact contract the CI gate checks.
    let was = obs::enabled();
    obs::set_enabled(true);
    let points = loss_points(scale)
        .into_iter()
        .map(|loss| {
            let mut plan = FaultPlan::lossy(loss, 0.001, delay_max, PLAN_SEED);
            plan.crashes.push((CRASH_NODE, CRASH_AT));
            plan.partitions.push(Partition {
                nodes: vec![PART_NODE],
                from: PART_FROM,
                until: PART_UNTIL,
            });
            let t0 = Instant::now();
            let run = run_cluster(&dep, &manifest, &caps, &plan, &cfg).expect("valid config");
            let wall_s = t0.elapsed().as_secs_f64();
            assert_acceptance(&dep, &manifest, &cfg.health, delay_max, loss, run, wall_s)
        })
        .collect();
    obs::set_enabled(was);

    ClusterBench { points, retry_budget, backoff_base, delay_max, threads: parallel::num_threads() }
}

/// ISSUE 9 acceptance, asserted on every bench run — convergence numbers
/// for a run that detected late, uncovered traffic, or served a stale
/// manifest are worthless.
fn assert_acceptance(
    dep: &nwdp_core::NidsDeployment,
    initial: &nwdp_core::nids::SamplingManifest,
    health: &HealthConfig,
    delay_max: f64,
    loss: f64,
    run: ClusterRun,
    wall_s: f64,
) -> ClusterPoint {
    // Detection: the crash is declared from actually missed heartbeats,
    // no later than the grid prediction + worst-case delay + grace.
    let d = run
        .detection_of(CRASH_NODE)
        .unwrap_or_else(|| panic!("crash of node {} never detected at loss {loss}", CRASH_NODE.0));
    let predicted = health.detect_at(CRASH_AT);
    let slack = health.max_detection_delay() + delay_max + 1e-9;
    // Beats lost to the link just before the crash pull `last_seen` (and
    // so the declaration) earlier than the grid prediction by up to the
    // same worst-case window — symmetric slack.
    assert!(
        d.declared_at >= predicted - slack && d.declared_at <= predicted + slack,
        "loss {loss}: crash declared at {} vs predicted {predicted} (±{slack} slack)",
        d.declared_at
    );
    let detected_at = d.declared_at;

    // Coverage: never below the greedy repair bound for everything that
    // was ever declared (false suspicions under loss shrink the bound the
    // same way real failures do — their own-only units go residual until
    // a reload rebalances).
    let ever: Vec<NodeId> = run.detections.iter().map(|det| det.node).collect();
    let worst: f64 = ever.iter().map(|&n| manifest_gap_fraction(dep, initial, &[n])).sum();
    let repair_bound = 1.0 - worst;
    assert!(
        run.coverage_floor() >= repair_bound - 1e-9,
        "loss {loss}: coverage floor {} below the repair bound {repair_bound}",
        run.coverage_floor()
    );

    // Fencing: installs strictly monotone, stale wire counter balanced,
    // and every node still trusted at the horizon runs the final epoch.
    for (j, installs) in run.node_installs.iter().enumerate() {
        let mut prev = 0u64;
        for &(at, epoch) in installs {
            assert!(epoch > prev, "loss {loss}: node {j} re-installed epoch {epoch} at {at}");
            prev = epoch;
        }
    }
    let wire: u64 = run.node_stale_rejects.iter().sum();
    assert_eq!(wire, run.stats.stale_epoch_rejects, "loss {loss}: stale-reject accounting");

    // Forwarded-alert accounting balances exactly (trivially zero when
    // the alert plane — and with it `alert_every` — is off).
    assert_eq!(
        run.stats.alert_sends,
        run.stats.alert_delivered + run.stats.alert_drops,
        "loss {loss}: alert accounting must balance"
    );
    for j in 0..run.node_epochs.len() {
        if !run.failed_final.contains(&NodeId(j)) {
            assert_eq!(
                run.node_epochs[j], run.final_epoch,
                "loss {loss}: live node {j} is stale at the horizon"
            );
        }
    }

    ClusterPoint { loss, run, wall_s, predicted_detect: predicted, detected_at, repair_bound }
}

/// Per-loss-point summary: the convergence-latency-vs-loss table.
pub fn table(b: &ClusterBench) -> Table {
    let mut t = Table::new(
        "Control-plane convergence vs link loss (Internet2, crash + partition script)",
        &[
            "loss",
            "detect_at",
            "predicted",
            "detections",
            "epochs",
            "max_conv_latency",
            "retries",
            "timeouts",
            "drops",
            "stale_rejects",
            "recoveries",
            "coverage_floor",
            "repair_bound",
            "wall_s",
        ],
    );
    for p in &b.points {
        let s = &p.run.stats;
        let max_latency =
            p.run.convergence_latencies().iter().map(|&(_, l)| l).fold(0.0f64, f64::max);
        t.row(vec![
            f2(p.loss),
            f4(p.detected_at),
            f4(p.predicted_detect),
            p.run.detections.len().to_string(),
            p.run.final_epoch.to_string(),
            f4(max_latency),
            s.retries.to_string(),
            s.timeouts.to_string(),
            (s.drops_loss + s.drops_cut).to_string(),
            s.stale_epoch_rejects.to_string(),
            s.recoveries.to_string(),
            format!("{:.9}", p.run.coverage_floor()),
            format!("{:.9}", p.repair_bound),
            f2(p.wall_s),
        ]);
    }
    t
}

/// Per-epoch CSV: when each manifest generation was created and how long
/// it took to reach every target.
pub fn epochs_table(b: &ClusterBench) -> Table {
    let mut t = Table::new(
        "Manifest epochs per loss point",
        &["loss", "epoch", "created_at", "targets", "acked", "conv_latency"],
    );
    for p in &b.points {
        for e in &p.run.epochs {
            t.row(vec![
                f2(p.loss),
                e.epoch.to_string(),
                f4(e.created_at),
                e.targets.to_string(),
                e.acked.to_string(),
                e.convergence_latency().map(f4).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t
}

/// Append the sweep's canonical point (highest loss) to the repo-root
/// trajectory so convergence latency across commits stays visible.
pub fn append_trajectory(path: &Path, b: &ClusterBench) -> std::io::Result<usize> {
    let p = b
        .points
        .iter()
        .max_by(|a, c| a.loss.total_cmp(&c.loss))
        .expect("sweep has at least one point");
    let max_latency = p.run.convergence_latencies().iter().map(|&(_, l)| l).fold(0.0f64, f64::max);
    crate::output::append_trajectory(
        path,
        vec![
            ("loss", obs::Json::Num(p.loss)),
            ("threads", obs::Json::Num(b.threads as f64)),
            ("retry_budget", obs::Json::Num(b.retry_budget as f64)),
            ("backoff_base", obs::Json::Num(b.backoff_base)),
            ("delay_max", obs::Json::Num(b.delay_max)),
            ("detect_latency", obs::Json::Num(p.detected_at - CRASH_AT)),
            ("max_conv_latency", obs::Json::Num(max_latency)),
            ("detections", obs::Json::Num(p.run.detections.len() as f64)),
            ("final_epoch", obs::Json::Num(p.run.final_epoch as f64)),
            ("retries", obs::Json::Num(p.run.stats.retries as f64)),
            ("timeouts", obs::Json::Num(p.run.stats.timeouts as f64)),
            ("coverage_floor", obs::Json::Num(p.run.coverage_floor())),
            ("wall_s", obs::Json::Num(p.wall_s)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_meets_the_acceptance_criteria() {
        // `run` asserts detection, coverage, and fencing internally.
        let b = run(Scale::Quick);
        assert_eq!(b.points.len(), 2);
        assert_eq!(b.points[0].loss, 0.0);
        // Zero loss: exactly the two scripted faults are ever declared.
        assert_eq!(b.points[0].run.detections.len(), 2);
        assert_eq!(table(&b).rows.len(), 2);
        assert!(epochs_table(&b).rows.len() >= 4, "≥ 2 epochs per point");
    }

    #[test]
    fn trajectory_appends_the_highest_loss_point() {
        let dir = std::env::temp_dir().join("nwdp_cluster_traj_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_cluster.json");
        let _ = std::fs::remove_file(&path);
        let b = run(Scale::Quick);
        assert_eq!(append_trajectory(&path, &b).unwrap(), 1);
        assert_eq!(append_trajectory(&path, &b).unwrap(), 2);
        let json = obs::parse_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Some(obs::Json::Arr(runs)) = json.get("runs") else { panic!("runs array missing") };
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("loss"), Some(&obs::Json::Num(0.1)));
        let _ = std::fs::remove_file(&path);
    }
}
