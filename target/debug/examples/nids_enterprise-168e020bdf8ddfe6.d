/root/repo/target/debug/examples/nids_enterprise-168e020bdf8ddfe6.d: examples/nids_enterprise.rs

/root/repo/target/debug/examples/nids_enterprise-168e020bdf8ddfe6: examples/nids_enterprise.rs

examples/nids_enterprise.rs:
