/root/repo/target/debug/deps/online_fpl-64aaea30551fce3d.d: crates/bench/benches/online_fpl.rs Cargo.toml

/root/repo/target/debug/deps/libonline_fpl-64aaea30551fce3d.rmeta: crates/bench/benches/online_fpl.rs Cargo.toml

crates/bench/benches/online_fpl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
