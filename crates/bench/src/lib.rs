//! # nwdp-bench — the experiment harness
//!
//! One module per paper figure/table; the `repro` binary drives them and
//! writes CSV + ASCII tables into `results/`. Criterion benches (under
//! `benches/`) measure wall-clock for the key kernels.

pub mod alerts;
pub mod cluster;
pub mod extensions;
pub mod fig10;
pub mod fig11;
pub mod fig5;
pub mod fig678;
pub mod opttime;
pub mod output;
pub mod reload;
pub mod report;
pub mod resilience;
pub mod scenario;
pub mod selftest;
pub mod throughput;
pub mod warmstart;

pub use scenario::Scale;
