/root/repo/target/debug/deps/nwdp_lp-978ae1b7dc96b45a.d: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs

/root/repo/target/debug/deps/nwdp_lp-978ae1b7dc96b45a: crates/lp/src/lib.rs crates/lp/src/check.rs crates/lp/src/flow.rs crates/lp/src/milp.rs crates/lp/src/model.rs crates/lp/src/presolve.rs crates/lp/src/rowgen.rs crates/lp/src/simplex/mod.rs crates/lp/src/simplex/dense.rs crates/lp/src/simplex/sparse.rs crates/lp/src/solution.rs

crates/lp/src/lib.rs:
crates/lp/src/check.rs:
crates/lp/src/flow.rs:
crates/lp/src/milp.rs:
crates/lp/src/model.rs:
crates/lp/src/presolve.rs:
crates/lp/src/rowgen.rs:
crates/lp/src/simplex/mod.rs:
crates/lp/src/simplex/dense.rs:
crates/lp/src/simplex/sparse.rs:
crates/lp/src/solution.rs:
