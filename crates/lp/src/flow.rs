//! Min-cost flow (successive shortest augmenting paths with potentials).
//!
//! Used as a fast exact path for the NIPS *inner* sampling LPs: when every
//! rule has proportional resource requirements (the paper's evaluation sets
//! `CamReq = CpuReq = MemReq = 1`) and packet/flow volumes are proportional
//! across paths, the LP over the `d_ikj` sampling fractions with the rule
//! placement fixed is exactly a max-profit transportation problem —
//! commodities are `(rule, path)` pairs with supply `T_ik`, sinks are node
//! capacities, and arc profit is the distance-weighted drop benefit.
//!
//! The solver computes a **negative-cost circulation** from `source`: it
//! augments along the cheapest residual path while that path has strictly
//! negative cost, so shipping is optional and only profitable flow moves.
//! This is precisely the LP optimum for such problems (see the
//! cross-check against the simplex in `tests/flow_vs_simplex.rs`).
//!
//! Capacities are `i64` (callers scale fractional volumes); costs are `f64`.

const EPS: f64 = 1e-9;

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    rev: usize,
    cap: i64,
    /// Capacity the arc was built with; [`MinCostFlow::reset_flows`]
    /// restores `cap` to this (forward arcs) or to 0 (reverse arcs).
    base: i64,
    cost: f64,
}

/// Handle to an arc, for querying flow after the solve.
#[derive(Debug, Clone, Copy)]
pub struct ArcId {
    from: usize,
    idx: usize,
}

/// A min-cost flow network.
#[derive(Debug, Clone, Default)]
pub struct MinCostFlow {
    graph: Vec<Vec<Arc>>,
}

impl MinCostFlow {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_node(&mut self) -> usize {
        self.graph.push(Vec::new());
        self.graph.len() - 1
    }

    pub fn add_nodes(&mut self, n: usize) -> std::ops::Range<usize> {
        let start = self.graph.len();
        for _ in 0..n {
            self.graph.push(Vec::new());
        }
        start..self.graph.len()
    }

    /// Add a directed arc `u → v` with capacity `cap ≥ 0` and per-unit cost.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: i64, cost: f64) -> ArcId {
        assert!(cap >= 0, "negative capacity");
        assert!(u != v, "self loops unsupported");
        let fw = Arc { to: v, rev: self.graph[v].len(), cap, base: cap, cost };
        let bw = Arc { to: u, rev: self.graph[u].len(), cap: 0, base: 0, cost: -cost };
        self.graph[u].push(fw);
        self.graph[v].push(bw);
        ArcId { from: u, idx: self.graph[u].len() - 1 }
    }

    /// Undo all flow: restore every residual capacity to its as-built
    /// value. After this the network is equivalent to a freshly
    /// constructed one (modulo [`Self::set_cost`]/[`Self::throttle`]
    /// changes), so the same allocation can serve many solves.
    pub fn reset_flows(&mut self) {
        for arcs in &mut self.graph {
            for a in arcs.iter_mut() {
                a.cap = a.base;
            }
        }
    }

    /// Re-price an arc (forward cost `cost`, reverse `-cost`). Only valid
    /// on a flow-free network — call [`Self::reset_flows`] first.
    pub fn set_cost(&mut self, arc: ArcId, cost: f64) {
        let (to, rev) = {
            let a = &mut self.graph[arc.from][arc.idx];
            a.cost = cost;
            (a.to, a.rev)
        };
        self.graph[to][rev].cost = -cost;
    }

    /// Cap an arc's *current* capacity at `cap` (without changing its
    /// as-built capacity). Only valid on a flow-free network — call
    /// [`Self::reset_flows`] first. `throttle(id, 0)` disables the arc
    /// for this solve; the next `reset_flows` re-enables it.
    pub fn throttle(&mut self, arc: ArcId, cap: i64) {
        assert!(cap >= 0, "negative capacity");
        let (to, rev) = {
            let a = &self.graph[arc.from][arc.idx];
            (a.to, a.rev)
        };
        debug_assert_eq!(self.graph[to][rev].cap, 0, "throttle on a network carrying flow");
        let a = &mut self.graph[arc.from][arc.idx];
        a.cap = a.base.min(cap);
    }

    /// Flow currently on `arc` (valid after [`Self::solve_profitable`]).
    pub fn flow(&self, arc: ArcId) -> i64 {
        let a = &self.graph[arc.from][arc.idx];
        // Residual on the reverse arc equals the flow pushed forward.
        self.graph[a.to][a.rev].cap
    }

    /// Bellman–Ford potentials (handles negative arc costs; the graphs we
    /// build are DAG-like so this converges quickly).
    fn initial_potentials(&self, source: usize) -> Vec<f64> {
        let n = self.graph.len();
        let mut pot = vec![f64::INFINITY; n];
        pot[source] = 0.0;
        for _round in 0..n {
            let mut changed = false;
            for u in 0..n {
                if pot[u].is_finite() {
                    for a in &self.graph[u] {
                        if a.cap > 0 && pot[u] + a.cost < pot[a.to] - EPS {
                            pot[a.to] = pot[u] + a.cost;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Unreachable nodes keep infinite potential; replace with 0 so
        // reduced-cost arithmetic stays finite (they remain unreachable).
        for p in pot.iter_mut() {
            if !p.is_finite() {
                *p = 0.0;
            }
        }
        pot
    }

    /// Augment along cheapest residual source→sink paths while their total
    /// cost is strictly negative. Returns `(total_flow, total_cost)`.
    ///
    /// With all profitable arcs modeled as negative costs, this computes
    /// the maximum-profit (not maximum-volume) flow.
    pub fn solve_profitable(&mut self, source: usize, sink: usize) -> (i64, f64) {
        let n = self.graph.len();
        let mut pot = self.initial_potentials(source);
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;

        loop {
            // Dijkstra with reduced costs.
            let mut dist = vec![f64::INFINITY; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            dist[source] = 0.0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((ordered(0.0), source)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                let d = unordered(d);
                if d > dist[u] + EPS {
                    continue;
                }
                for (i, a) in self.graph[u].iter().enumerate() {
                    if a.cap <= 0 {
                        continue;
                    }
                    let rc = a.cost + pot[u] - pot[a.to];
                    let nd = d + rc.max(0.0);
                    if nd < dist[a.to] - EPS {
                        dist[a.to] = nd;
                        prev[a.to] = Some((u, i));
                        heap.push(std::cmp::Reverse((ordered(nd), a.to)));
                    }
                }
            }
            if !dist[sink].is_finite() {
                break;
            }
            // True path cost (undo the potential telescoping).
            let path_cost = dist[sink] + pot[sink] - pot[source];
            if path_cost >= -EPS {
                break; // no more profitable augmentation
            }
            // Bottleneck.
            let mut bottleneck = i64::MAX;
            let mut v = sink;
            while v != source {
                let (u, i) = prev[v].expect("path broken");
                bottleneck = bottleneck.min(self.graph[u][i].cap);
                v = u;
            }
            debug_assert!(bottleneck > 0);
            // Apply.
            let mut v = sink;
            while v != source {
                let (u, i) = prev[v].expect("path broken");
                let rev = self.graph[u][i].rev;
                self.graph[u][i].cap -= bottleneck;
                self.graph[v][rev].cap += bottleneck;
                v = u;
            }
            total_flow += bottleneck;
            total_cost += path_cost * bottleneck as f64;
            // Update potentials for reachable nodes.
            for (u, du) in dist.iter().enumerate() {
                if du.is_finite() {
                    pot[u] += du;
                }
            }
        }
        (total_flow, total_cost)
    }
}

/// f64 ordering shim for the heap (distances are non-negative finite).
fn ordered(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    x.to_bits()
}

fn unordered(b: u64) -> f64 {
    f64::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_profitable_shipping() {
        // source → a (cap 10, cost 0), a → sink (cap 10, profit 2/unit).
        let mut g = MinCostFlow::new();
        let s = g.add_node();
        let a = g.add_node();
        let t = g.add_node();
        g.add_arc(s, a, 10, 0.0);
        let pa = g.add_arc(a, t, 10, -2.0);
        let (f, c) = g.solve_profitable(s, t);
        assert_eq!(f, 10);
        assert!((c + 20.0).abs() < 1e-9);
        assert_eq!(g.flow(pa), 10);
    }

    #[test]
    fn unprofitable_flow_not_shipped() {
        let mut g = MinCostFlow::new();
        let s = g.add_node();
        let t = g.add_node();
        g.add_arc(s, t, 100, 1.0); // positive cost: never ship
        let (f, c) = g.solve_profitable(s, t);
        assert_eq!(f, 0);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn capacity_forces_best_allocation() {
        // Two commodities compete for one capacity-5 node; profits 3 and 1.
        let mut g = MinCostFlow::new();
        let s = g.add_node();
        let c1 = g.add_node();
        let c2 = g.add_node();
        let node = g.add_node();
        let t = g.add_node();
        g.add_arc(s, c1, 4, 0.0);
        g.add_arc(s, c2, 4, 0.0);
        let a1 = g.add_arc(c1, node, 4, -3.0);
        let a2 = g.add_arc(c2, node, 4, -1.0);
        g.add_arc(node, t, 5, 0.0);
        let (f, c) = g.solve_profitable(s, t);
        assert_eq!(f, 5);
        assert_eq!(g.flow(a1), 4, "high-profit commodity ships fully");
        assert_eq!(g.flow(a2), 1, "low-profit commodity gets the remainder");
        assert!((c + (4.0 * 3.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn multiple_paths_optimal_total() {
        let mut g = MinCostFlow::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_arc(s, a, 1, -10.0);
        g.add_arc(s, b, 1, -1.0);
        g.add_arc(a, t, 1, -1.0);
        g.add_arc(a, b, 1, -1.0);
        g.add_arc(b, t, 1, -10.0);
        let (f, c) = g.solve_profitable(s, t);
        assert_eq!(f, 2);
        // Candidates: {s→a→b→t, s→b(…blocked)} vs {s→a→t, s→b→t}.
        // Latter totals −(10+1) − (1+10) = −22 and is optimal.
        assert!((c + 22.0).abs() < 1e-9, "cost = {c}");
    }

    #[test]
    fn reset_and_reprice_matches_fresh_network() {
        // Solve, then reset + re-price + throttle, and compare against a
        // freshly built network with the new prices/caps.
        let mut g = MinCostFlow::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_arc(s, a, 7, 0.0);
        g.add_arc(s, b, 7, 0.0);
        let pa = g.add_arc(a, t, 7, -2.0);
        let pb = g.add_arc(b, t, 7, -1.0);
        let (f1, _) = g.solve_profitable(s, t);
        assert_eq!(f1, 14);

        g.reset_flows();
        g.set_cost(pa, 3.0); // now unprofitable
        g.set_cost(pb, -5.0);
        g.throttle(pb, 4);
        let (f2, c2) = g.solve_profitable(s, t);

        let mut fresh = MinCostFlow::new();
        let s2 = fresh.add_node();
        let a2 = fresh.add_node();
        let b2 = fresh.add_node();
        let t2 = fresh.add_node();
        fresh.add_arc(s2, a2, 7, 0.0);
        fresh.add_arc(s2, b2, 7, 0.0);
        fresh.add_arc(a2, t2, 7, 3.0);
        fresh.add_arc(b2, t2, 4, -5.0);
        let (f3, c3) = fresh.solve_profitable(s2, t2);
        assert_eq!(f2, f3);
        assert!((c2 - c3).abs() < 1e-9);
        assert_eq!(f2, 4);

        // A second reset restores full capacity on the throttled arc.
        g.reset_flows();
        let (f4, _) = g.solve_profitable(s, t);
        assert_eq!(f4, 7, "only pb is profitable after re-pricing");
    }

    #[test]
    fn disconnected_sink_ships_nothing() {
        let mut g = MinCostFlow::new();
        let s = g.add_node();
        let _a = g.add_node();
        let t = g.add_node();
        g.add_arc(s, _a, 5, -1.0);
        let (f, c) = g.solve_profitable(s, t);
        assert_eq!(f, 0);
        assert_eq!(c, 0.0);
    }
}
