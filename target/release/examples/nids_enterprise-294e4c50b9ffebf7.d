/root/repo/target/release/examples/nids_enterprise-294e4c50b9ffebf7.d: examples/nids_enterprise.rs

/root/repo/target/release/examples/nids_enterprise-294e4c50b9ffebf7: examples/nids_enterprise.rs

examples/nids_enterprise.rs:
