//! Independent optimality verification.
//!
//! For a linear program, a primal point `x` together with row duals `π` is
//! optimal **iff** it satisfies the KKT conditions: primal feasibility,
//! dual feasibility (sign-correct reduced costs at the bounds), and
//! complementary slackness. [`verify_kkt`] checks all three directly
//! against the raw problem data — it shares no code path with the simplex —
//! so a passing check certifies optimality regardless of how the solution
//! was produced. It doubles as the test oracle for the solver.

use crate::model::{Cmp, Problem, Sense};
use crate::solution::Solution;

/// Tolerances for [`verify_kkt`].
#[derive(Debug, Clone, Copy)]
pub struct KktTol {
    pub feas: f64,
    pub dual: f64,
    pub comp: f64,
}

impl Default for KktTol {
    fn default() -> Self {
        KktTol { feas: 1e-6, dual: 1e-6, comp: 1e-5 }
    }
}

/// Verify that `sol` is an optimal solution of `p` via the KKT conditions.
/// Returns a human-readable description of the first violated condition.
pub fn verify_kkt(p: &Problem, sol: &Solution, tol: KktTol) -> Result<(), String> {
    let x = &sol.x;
    if x.len() != p.num_vars() {
        return Err(format!("x has {} entries, problem has {} vars", x.len(), p.num_vars()));
    }
    // Scale-aware tolerance: large coefficients/rhs magnify roundoff.
    let scale = p
        .cons
        .iter()
        .map(|c| c.rhs.abs())
        .fold(1.0f64, f64::max)
        .max(x.iter().map(|v| v.abs()).fold(1.0f64, f64::max));

    // --- Primal feasibility ---
    for (j, v) in p.vars.iter().enumerate() {
        if x[j] < v.lb - tol.feas * scale || x[j] > v.ub + tol.feas * scale {
            return Err(format!("var {} = {} outside [{}, {}]", v.name, x[j], v.lb, v.ub));
        }
    }
    let mut act = vec![0.0f64; p.num_cons()];
    for (j, col) in p.cols.iter().enumerate() {
        for &(row, a) in col {
            act[row] += a * x[j];
        }
    }
    for (i, con) in p.cons.iter().enumerate() {
        let viol = match con.cmp {
            Cmp::Le => act[i] - con.rhs,
            Cmp::Ge => con.rhs - act[i],
            Cmp::Eq => (act[i] - con.rhs).abs(),
        };
        if viol > tol.feas * scale {
            return Err(format!("row {} violated by {viol}", con.name));
        }
    }

    // --- Dual feasibility: constraint dual signs ---
    // Convention: for Min, a binding `≤` row has π ≤ 0 and a `≥` row π ≥ 0;
    // for Max the signs flip (we store duals in the problem's own sense).
    let flip = match p.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    for (i, con) in p.cons.iter().enumerate() {
        let d = flip * sol.duals[i];
        match con.cmp {
            Cmp::Le if d > tol.dual * scale => {
                return Err(format!("row {}: dual {} has wrong sign for ≤", con.name, sol.duals[i]))
            }
            Cmp::Ge if d < -tol.dual * scale => {
                return Err(format!("row {}: dual {} has wrong sign for ≥", con.name, sol.duals[i]))
            }
            _ => {}
        }
    }

    // --- Complementary slackness on rows ---
    for (i, con) in p.cons.iter().enumerate() {
        let slack = match con.cmp {
            Cmp::Le => con.rhs - act[i],
            Cmp::Ge => act[i] - con.rhs,
            Cmp::Eq => 0.0,
        };
        if slack.abs() > tol.comp * scale && sol.duals[i].abs() > tol.comp * scale {
            return Err(format!(
                "row {}: slack {} and dual {} both nonzero",
                con.name, slack, sol.duals[i]
            ));
        }
    }

    // --- Reduced costs: dual feasibility + complementary slackness on vars ---
    // Reduced cost (in min convention): r_j = c_j - π·A_j, where c is the
    // min-sense objective. At optimum: x_j at lb ⇒ r_j ≥ 0; at ub ⇒ r_j ≤ 0;
    // strictly between ⇒ r_j ≈ 0.
    for (j, v) in p.vars.iter().enumerate() {
        let cj = flip * v.obj;
        let mut r = cj;
        for &(row, a) in &p.cols[j] {
            r -= flip * sol.duals[row] * a;
        }
        let at_lb = (x[j] - v.lb).abs() <= tol.comp * scale;
        let at_ub = (v.ub - x[j]).abs() <= tol.comp * scale;
        if at_lb && at_ub {
            continue; // fixed variable: any reduced cost is fine
        }
        if at_lb {
            if r < -tol.dual * scale {
                return Err(format!("var {}: at lower bound with reduced cost {r}", v.name));
            }
        } else if at_ub {
            if r > tol.dual * scale {
                return Err(format!("var {}: at upper bound with reduced cost {r}", v.name));
            }
        } else if r.abs() > tol.dual * scale * 10.0 {
            return Err(format!("var {}: basic/interior with reduced cost {r}", v.name));
        }
    }
    Ok(())
}
