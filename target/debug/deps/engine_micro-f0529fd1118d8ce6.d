/root/repo/target/debug/deps/engine_micro-f0529fd1118d8ce6.d: crates/bench/benches/engine_micro.rs Cargo.toml

/root/repo/target/debug/deps/libengine_micro-f0529fd1118d8ce6.rmeta: crates/bench/benches/engine_micro.rs Cargo.toml

crates/bench/benches/engine_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
