/root/repo/target/debug/deps/warmstart-f6d2d27ecadd6493.d: crates/lp/tests/warmstart.rs Cargo.toml

/root/repo/target/debug/deps/libwarmstart-f6d2d27ecadd6493.rmeta: crates/lp/tests/warmstart.rs Cargo.toml

crates/lp/tests/warmstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
