/root/repo/target/debug/deps/nips_exact_vs_rounding-0770a1703a92e818.d: tests/nips_exact_vs_rounding.rs

/root/repo/target/debug/deps/nips_exact_vs_rounding-0770a1703a92e818: tests/nips_exact_vs_rounding.rs

tests/nips_exact_vs_rounding.rs:
