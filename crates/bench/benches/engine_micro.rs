//! Wall-clock benches for the NIDS engine kernels (real time, next to the
//! deterministic cycle model used for the figures): per-session processing
//! cost for the heaviest modules, with and without coordination checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nwdp_core::{build_units, AnalysisClass};
use nwdp_engine::{standalone_coordination, AhoCorasick, CoordContext, Engine, Placement};
use nwdp_hash::KeyedHasher;
use nwdp_topo::{line, NodeId, PathDb};
use nwdp_traffic::{generate_trace, NetTrace, TraceConfig, TrafficMatrix, VolumeModel};
use std::hint::black_box;

fn trace_1k() -> NetTrace {
    let topo = line(2);
    let tm = TrafficMatrix::uniform(&topo);
    generate_trace(&topo, &tm, &TraceConfig::new(1000, 77))
}

fn bench_engine_pipeline(c: &mut Criterion) {
    let trace = trace_1k();
    let pkts: u64 = trace.total_packets() as u64;
    let topo = line(2);
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::uniform(&topo);
    let vol = VolumeModel::internet2_baseline();
    let classes = AnalysisClass::standard_set();
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    let (solo, manifest) = standalone_coordination(&dep, NodeId(0));
    let names: Vec<String> = classes.iter().map(|c| c.name.clone()).collect();

    let mut g = c.benchmark_group("engine_per_packet");
    g.throughput(Throughput::Elements(pkts));
    for placement in [Placement::Unmodified, Placement::EventEngine, Placement::PolicyEngine] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{placement:?}")),
            &placement,
            |b, &placement| {
                b.iter(|| {
                    let coord = match placement {
                        Placement::Unmodified => None,
                        _ => Some(CoordContext::new(&solo, &manifest)),
                    };
                    let mut engine =
                        Engine::new(NodeId(0), placement, &names, coord, KeyedHasher::unkeyed())
                            .expect("benchmark modules are registered");
                    for s in &trace.sessions {
                        engine.process_session(s);
                    }
                    black_box(engine.stats().cpu_cycles)
                })
            },
        );
    }
    g.finish();
}

fn bench_signature_matching(c: &mut Criterion) {
    let ac = AhoCorasick::new(&[
        &b"msblast.exe"[..],
        &b"\x90\x90\x90\x90\xeb\x1f"[..],
        &b"cmd.exe /c tftp -i"[..],
        &b"GET /admin"[..],
    ]);
    let clean: Vec<u8> = (0..1460u32).map(|i| (i * 31 % 200 + 32) as u8).collect();
    let mut dirty = clean.clone();
    dirty[700..711].copy_from_slice(b"msblast.exe");
    let mut g = c.benchmark_group("aho_corasick_1460B");
    g.throughput(Throughput::Bytes(1460));
    g.bench_function("clean_payload", |b| b.iter(|| ac.is_match(black_box(&clean))));
    g.bench_function("matching_payload", |b| b.iter(|| ac.scan(black_box(&dirty), |_, _| {})));
    g.finish();
}

criterion_group!(benches, bench_engine_pipeline, bench_signature_matching);
criterion_main!(benches);
