//! Follow-the-Perturbed-Leader for adaptive NIPS deployment (§3.5).
//!
//! The defender re-solves the (no-TCAM) sampling LP every epoch against
//! the *perturbed historical sum* of observed match rates (Kalai–Vempala):
//!
//! 1. draw `p_t` uniformly from `[0, 1/ε]^n`;
//! 2. play `O_t = Λ(Σ_{q<t} S_q + p_t)`, where `Λ` is the LP oracle.
//!
//! With `ε = sqrt(D / (R·A·γ))` the expected average regret vanishes as
//! `sqrt(D·R·A / γ)` (Theorem 3.1 of the paper, citing Kalai–Vempala).
//! The oracle is the exact min-cost-flow inner solver with every rule
//! enabled everywhere (the §3.5 simplification drops the TCAM
//! constraints, removing the discrete variables entirely).

use crate::adversary::Adversary;
use nwdp_core::nips::{InnerFlowOracle, NipsInstance};
use nwdp_core::parallel;
use nwdp_obs as obs;
use nwdp_traffic::MatchRates;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Mutex;

/// FPL configuration.
#[derive(Debug, Clone)]
pub struct FplConfig {
    pub epochs: usize,
    /// Perturbation scale ε; `None` derives the theorem's value from the
    /// instance (D = M·N·L, R = A = Σ T_items × maxdrop).
    pub epsilon: Option<f64>,
    /// Conservative upper bound on the droppable fraction (used for the
    /// automatic ε).
    pub maxdrop: f64,
    pub seed: u64,
    /// Also track the non-adaptive "follow the leader" baseline (no
    /// perturbation) for comparison.
    pub track_ftl: bool,
    /// Reuse the oracle's min-cost-flow network across epochs (build
    /// once, re-price per solve) instead of rebuilding it every solve.
    /// Bit-identical results either way; `false` is the cold comparator
    /// for the warm-start benchmarks.
    pub reuse_oracle: bool,
}

impl Default for FplConfig {
    fn default() -> Self {
        FplConfig {
            epochs: 200,
            epsilon: None,
            maxdrop: 0.01,
            seed: 0,
            track_ftl: false,
            reuse_oracle: true,
        }
    }
}

/// A degenerate [`FplConfig`] that [`run_fpl`] refuses to play. Each
/// variant names the offending knob; previously these produced an empty or
/// numerically meaningless [`OnlineRun`] instead of an error.
#[derive(Debug, Clone, PartialEq)]
pub enum FplError {
    /// `epochs == 0`: there is no round to play, and every per-epoch
    /// trajectory (including the Fig 11 regret series) would be empty.
    ZeroEpochs,
    /// `maxdrop` must be a positive finite fraction in `(0, 1]`: it scales
    /// the Theorem 3.1 constants R = A that derive the automatic ε.
    BadMaxDrop(f64),
    /// An explicit `epsilon` must be positive and finite — perturbations
    /// are drawn from `[0, 1/ε)`.
    BadEpsilon(f64),
}

impl std::fmt::Display for FplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FplError::ZeroEpochs => write!(f, "FPL needs at least one epoch (epochs == 0)"),
            FplError::BadMaxDrop(v) => {
                write!(f, "maxdrop must be a positive fraction in (0, 1], got {v}")
            }
            FplError::BadEpsilon(v) => {
                write!(f, "epsilon must be positive and finite, got {v}")
            }
        }
    }
}

impl std::error::Error for FplError {}

/// Per-epoch trajectory of the online game.
#[derive(Debug, Clone)]
pub struct OnlineRun {
    /// Value earned by FPL in each epoch (under that epoch's true rates).
    pub fpl_value: Vec<f64>,
    /// Value the best-in-hindsight static solution (for the prefix up to
    /// and including each epoch) earns over that prefix, divided by the
    /// prefix length — used for the normalized-regret metric.
    pub static_prefix_value: Vec<f64>,
    /// The paper's Fig 11 metric per epoch:
    /// `(Σ static − Σ fpl) / Σ static` over the prefix.
    pub normalized_regret: Vec<f64>,
    /// Optional follow-the-leader (unperturbed) values.
    pub ftl_value: Vec<f64>,
    /// The ε actually used.
    pub epsilon: f64,
}

fn max_hops(inst: &NipsInstance) -> usize {
    inst.paths.iter().map(|p| p.nodes.len()).max().unwrap_or(1)
}

/// Flat weight layout for (rule, path, pos): `(i·n_paths + k)·stride + pos`.
///
/// The stride (`max_hops`) is computed **once** and captured here; an
/// earlier version rescanned every path on every lookup, making weight
/// indexing O(paths) per access — O(rules·paths²·hops) per oracle solve.
#[derive(Debug, Clone, Copy)]
struct WeightLayout {
    n_paths: usize,
    stride: usize,
}

impl WeightLayout {
    fn new(inst: &NipsInstance) -> Self {
        WeightLayout { n_paths: inst.paths.len(), stride: max_hops(inst) }
    }

    #[inline]
    fn idx(&self, i: usize, k: usize, pos: usize) -> usize {
        (i * self.n_paths + k) * self.stride + pos
    }

    fn len(&self, n_rules: usize) -> usize {
        n_rules * self.n_paths * self.stride
    }
}

/// Run the online game for `cfg.epochs` epochs against `adversary`.
///
/// `inst` supplies the network/volume/capacity model; its own
/// `match_rates` are ignored (the adversary provides each epoch's truth).
/// Degenerate configurations — zero epochs, a non-positive `maxdrop`, an
/// explicit non-positive ε — are rejected with a typed [`FplError`] before
/// any epoch runs.
pub fn run_fpl(
    inst: &NipsInstance,
    adversary: &mut dyn Adversary,
    cfg: &FplConfig,
) -> Result<OnlineRun, FplError> {
    assert_eq!(adversary.n_rules(), inst.rules.len());
    assert_eq!(adversary.n_paths(), inst.paths.len());
    if cfg.epochs == 0 {
        return Err(FplError::ZeroEpochs);
    }
    if !cfg.maxdrop.is_finite() || cfg.maxdrop <= 0.0 || cfg.maxdrop > 1.0 {
        return Err(FplError::BadMaxDrop(cfg.maxdrop));
    }
    if let Some(e) = cfg.epsilon {
        if !e.is_finite() || e <= 0.0 {
            return Err(FplError::BadEpsilon(e));
        }
    }
    let t_run = obs::now_if_enabled();
    let nr = inst.rules.len();
    let np = inst.paths.len();
    let lay = WeightLayout::new(inst);
    let nweights = lay.len(nr);

    // The oracle Λ is the inner sampling LP with every rule enabled
    // everywhere (§3.5 drops the TCAM constraints). Its flow network has
    // the same structure every epoch — only the weights change — so build
    // it once per lane and re-price per solve. Lane 0 serves the FPL
    // decision, lane 1 the FTL/static-prefix solves: separate oracles so
    // the two scoped-thread solves never contend on one network.
    let all_enabled = vec![vec![true; inst.num_nodes]; nr];
    let oracles: [Mutex<Option<InnerFlowOracle>>; 2] = if cfg.reuse_oracle {
        [
            Mutex::new(Some(InnerFlowOracle::build(inst, &all_enabled))),
            Mutex::new(Some(InnerFlowOracle::build(inst, &all_enabled))),
        ]
    } else {
        [Mutex::new(None), Mutex::new(None)]
    };
    // Oracle solves dominate each epoch's wall time, so one registry
    // round-trip per solve is negligible; the timer handle is atomic and
    // safe from the scoped-thread fan-out below.
    let timed_oracle = |w: &[f64], lane: usize| {
        let t0 = obs::now_if_enabled();
        let weight = |i: usize, k: usize, pos: usize| w[lay.idx(i, k, pos)];
        let d = match oracles[lane].lock().expect("oracle lock").as_mut() {
            Some(o) => o.solve_feasible(inst, weight),
            None => InnerFlowOracle::build(inst, &all_enabled).solve_feasible(inst, weight),
        };
        if obs::enabled() {
            let s = obs::Scope::new("fpl");
            s.counter("oracle_solves").inc();
            if cfg.reuse_oracle {
                s.counter("oracle_reuses").inc();
            }
            s.timer("oracle_ns").observe_since(t0);
        }
        d
    };

    // Theorem 3.1 constants: D = M·N·L, R = A = Σ T_items × maxdrop.
    let d_const = (np * inst.num_nodes * nr) as f64;
    let ra: f64 = inst.paths.iter().map(|p| p.items).sum::<f64>() * cfg.maxdrop;
    let epsilon =
        cfg.epsilon.unwrap_or_else(|| (d_const / (ra * ra * cfg.epochs as f64).max(1e-12)).sqrt());

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Historical sum of state vectors Σ_q T_items × M_obs(q) × Dist.
    let mut hist = vec![0.0f64; nweights];
    let mut hist_rates: Vec<MatchRates> = Vec::with_capacity(cfg.epochs);

    let mut fpl_value = Vec::with_capacity(cfg.epochs);
    let mut ftl_value = Vec::with_capacity(cfg.epochs);
    let mut static_prefix_value = Vec::with_capacity(cfg.epochs);
    let mut normalized_regret = Vec::with_capacity(cfg.epochs);
    let mut fpl_total = 0.0;

    // Defender's previous per-(rule, path) covered fraction (for reactive
    // adversaries).
    let mut last_cover = vec![vec![0.0f64; np]; nr];

    let _span = obs::span!("fpl.run", epochs = cfg.epochs, rules = nr, paths = np);
    for t in 0..cfg.epochs {
        let _span = obs::span!("fpl.epoch", epoch = t);
        // --- Decide with perturbed history. ---
        // The perturbation draw stays on the sequential RNG; the two
        // oracle solves (FPL on perturbed history, FTL on raw history)
        // are independent of each other and run on scoped threads.
        let mut weights = hist.clone();
        for w in weights.iter_mut() {
            *w += rng.random_range(0.0..(1.0 / epsilon));
        }
        let (decision, ftl_decision) = if cfg.track_ftl && t > 0 {
            let mut pair = parallel::par_map_n(2, |j| {
                if j == 0 {
                    timed_oracle(&weights, 0)
                } else {
                    timed_oracle(&hist, 1)
                }
            });
            let ftl = pair.pop().expect("two oracle solves");
            (pair.pop().expect("two oracle solves"), Some(ftl))
        } else {
            (timed_oracle(&weights, 0), None)
        };

        // --- Truth revealed. ---
        let truth = adversary.reveal(t, &last_cover);

        // --- Score the epoch. ---
        let v = inst.objective_with_rates(&decision, &truth);
        fpl_total += v;
        fpl_value.push(v);
        if let Some(f) = ftl_decision {
            ftl_value.push(inst.objective_with_rates(&f, &truth));
        } else if cfg.track_ftl {
            ftl_value.push(v);
        }

        // --- Update history and defender-coverage snapshot. ---
        for i in 0..nr {
            for k in 0..np {
                let m = truth.rate(i, k);
                if m > 0.0 {
                    for pos in 0..inst.paths[k].nodes.len() {
                        hist[lay.idx(i, k, pos)] += inst.paths[k].items * m * inst.distance(k, pos);
                    }
                }
            }
        }
        last_cover = vec![vec![0.0; np]; nr];
        for ((i, k), shares) in decision.iter() {
            let c: f64 = shares.iter().map(|&(_, f)| f).sum();
            last_cover[*i][*k] = c;
        }
        hist_rates.push(truth);

        // --- Best static solution in hindsight for this prefix. ---
        // Scoring the static solution against each epoch of the prefix is
        // embarrassingly parallel; summing in input order keeps the f64
        // total bit-identical to the serial loop.
        let static_d = timed_oracle(&hist, 1);
        let static_total: f64 =
            parallel::par_map(&hist_rates, |_, m| inst.objective_with_rates(&static_d, m))
                .into_iter()
                .sum();
        static_prefix_value.push(static_total);
        let regret =
            if static_total > 1e-12 { (static_total - fpl_total) / static_total } else { 0.0 };
        normalized_regret.push(regret);
        if obs::enabled() {
            obs::record_series("fpl.cum_regret", t as f64, regret);
        }
    }

    if obs::enabled() {
        let s = obs::Scope::new("fpl");
        s.counter("runs").inc();
        s.counter("epochs").add(cfg.epochs as u64);
        s.gauge("epsilon").set(epsilon);
        if let Some(&r) = normalized_regret.last() {
            s.gauge("final_normalized_regret").set(r);
        }
        s.timer("run_ns").observe_since(t_run);
    }
    Ok(OnlineRun { fpl_value, static_prefix_value, normalized_regret, ftl_value, epsilon })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Shifting, StochasticUniform};
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

    fn instance(n_rules: usize) -> NipsInstance {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let rates = MatchRates::zeros(n_rules, paths.all_pairs().count());
        let mut inst = NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, n_rules, 1.0, rates);
        // §3.5 drops the TCAM constraint entirely.
        inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];
        inst
    }

    #[test]
    fn degenerate_configs_return_typed_errors() {
        let inst = instance(3);
        let mut adv = StochasticUniform::new(3, inst.paths.len(), 0.01, 1);
        let zero = FplConfig { epochs: 0, ..Default::default() };
        assert_eq!(run_fpl(&inst, &mut adv, &zero).unwrap_err(), FplError::ZeroEpochs);
        for maxdrop in [0.0, -0.5, 1.5, f64::INFINITY] {
            let cfg = FplConfig { epochs: 5, maxdrop, ..Default::default() };
            assert_eq!(
                run_fpl(&inst, &mut adv, &cfg).unwrap_err(),
                FplError::BadMaxDrop(maxdrop),
                "maxdrop {maxdrop}"
            );
        }
        for eps in [0.0, -1.0, f64::INFINITY] {
            let cfg = FplConfig { epochs: 5, epsilon: Some(eps), ..Default::default() };
            assert_eq!(
                run_fpl(&inst, &mut adv, &cfg).unwrap_err(),
                FplError::BadEpsilon(eps),
                "epsilon {eps}"
            );
        }
    }

    #[test]
    fn single_epoch_boundary_produces_finite_run() {
        // epochs == 1 is the smallest legal game; every trajectory must
        // have exactly one finite entry (no division hazards at t = 0).
        let inst = instance(3);
        let mut adv = StochasticUniform::new(3, inst.paths.len(), 0.01, 2);
        let cfg = FplConfig { epochs: 1, seed: 9, ..Default::default() };
        let run = run_fpl(&inst, &mut adv, &cfg).expect("one epoch is legal");
        assert_eq!(run.fpl_value.len(), 1);
        assert_eq!(run.normalized_regret.len(), 1);
        assert!(run.fpl_value[0].is_finite());
        assert!(run.normalized_regret[0].is_finite());
        assert!(run.epsilon.is_finite() && run.epsilon > 0.0);
    }

    #[test]
    fn regret_small_and_shrinking_under_stochastic_adversary() {
        let inst = instance(6);
        let mut adv = StochasticUniform::new(6, inst.paths.len(), 0.01, 7);
        let cfg = FplConfig { epochs: 60, seed: 3, ..Default::default() };
        let run = run_fpl(&inst, &mut adv, &cfg).expect("valid config");
        assert_eq!(run.normalized_regret.len(), 60);
        let early = run.normalized_regret[5].abs();
        let late = run.normalized_regret[59].abs();
        assert!(late < 0.2, "late regret {late} too large");
        assert!(late <= early + 0.05, "regret should not grow: {early} → {late}");
    }

    #[test]
    fn regret_can_go_negative() {
        // With i.i.d. rates the online algorithm sometimes beats the
        // static optimum on a lucky prefix; at minimum the metric must be
        // well-defined and bounded.
        let inst = instance(4);
        let mut adv = StochasticUniform::new(4, inst.paths.len(), 0.01, 11);
        let cfg = FplConfig { epochs: 30, seed: 5, ..Default::default() };
        let run = run_fpl(&inst, &mut adv, &cfg).expect("valid config");
        for r in &run.normalized_regret {
            assert!(r.is_finite());
            assert!(*r < 1.0);
        }
    }

    #[test]
    fn fpl_tracks_shifting_adversary() {
        let inst = instance(8);
        let mut adv = Shifting::new(8, inst.paths.len(), 0.01, 10, 2, 13);
        let cfg = FplConfig { epochs: 50, seed: 1, ..Default::default() };
        let run = run_fpl(&inst, &mut adv, &cfg).expect("valid config");
        // The game must produce positive value (the defender drops traffic).
        let total: f64 = run.fpl_value.iter().sum();
        assert!(total > 0.0);
        assert!(run.normalized_regret[49] < 0.6);
    }

    #[test]
    fn epsilon_auto_derivation_positive() {
        let inst = instance(3);
        let mut adv = StochasticUniform::new(3, inst.paths.len(), 0.01, 2);
        let cfg = FplConfig { epochs: 5, ..Default::default() };
        let run = run_fpl(&inst, &mut adv, &cfg).expect("valid config");
        assert!(run.epsilon > 0.0 && run.epsilon.is_finite());
    }

    #[test]
    fn deterministic_given_seeds() {
        let inst = instance(4);
        let cfg = FplConfig { epochs: 10, seed: 9, ..Default::default() };
        let mut a1 = StochasticUniform::new(4, inst.paths.len(), 0.01, 21);
        let mut a2 = StochasticUniform::new(4, inst.paths.len(), 0.01, 21);
        let r1 = run_fpl(&inst, &mut a1, &cfg).expect("valid config");
        let r2 = run_fpl(&inst, &mut a2, &cfg).expect("valid config");
        assert_eq!(r1.fpl_value, r2.fpl_value);
        assert_eq!(r1.normalized_regret, r2.normalized_regret);
    }

    /// Regression for the `widx` hoist: the precomputed stride must index
    /// weights exactly like the old formula that recomputed `max_hops`
    /// (an O(paths) scan) on every lookup.
    #[test]
    fn weight_layout_matches_naive_indexing() {
        let inst = instance(3);
        let lay = WeightLayout::new(&inst);
        let naive = |i: usize, k: usize, pos: usize| {
            let mh = inst.paths.iter().map(|p| p.nodes.len()).max().unwrap_or(1);
            (i * inst.paths.len() + k) * mh + pos
        };
        for i in 0..3 {
            for (k, path) in inst.paths.iter().enumerate() {
                for pos in 0..path.nodes.len() {
                    assert_eq!(lay.idx(i, k, pos), naive(i, k, pos));
                }
            }
        }
        assert_eq!(lay.len(3), 3 * inst.paths.len() * max_hops(&inst));
    }

    /// Reusing the oracle's flow network across epochs must be
    /// bit-identical to rebuilding it per solve (a reset + re-priced
    /// network is exactly the state a fresh build produces).
    #[test]
    fn oracle_reuse_bit_identical_to_rebuild() {
        let inst = instance(5);
        let cfg_warm = FplConfig { epochs: 15, seed: 17, track_ftl: true, ..Default::default() };
        let cfg_cold = FplConfig { reuse_oracle: false, ..cfg_warm.clone() };
        let mut a1 = StochasticUniform::new(5, inst.paths.len(), 0.01, 8);
        let mut a2 = StochasticUniform::new(5, inst.paths.len(), 0.01, 8);
        let warm = run_fpl(&inst, &mut a1, &cfg_warm).expect("valid config");
        let cold = run_fpl(&inst, &mut a2, &cfg_cold).expect("valid config");
        assert_eq!(warm.fpl_value, cold.fpl_value);
        assert_eq!(warm.ftl_value, cold.ftl_value);
        assert_eq!(warm.static_prefix_value, cold.static_prefix_value);
        assert_eq!(warm.normalized_regret, cold.normalized_regret);
    }
}

#[cfg(test)]
mod ftl_tests {
    use super::*;
    use crate::adversary::Reactive;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

    #[test]
    fn ftl_tracking_produces_comparable_series() {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let rates = MatchRates::zeros(4, paths.all_pairs().count());
        let mut inst = NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, 4, 1.0, rates);
        inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];
        let mut adv = Reactive::new(4, inst.paths.len(), 0.01, 6);
        let cfg = FplConfig { epochs: 20, seed: 2, track_ftl: true, ..Default::default() };
        let run = run_fpl(&inst, &mut adv, &cfg).expect("valid config");
        assert_eq!(run.ftl_value.len(), 20);
        assert!(run.ftl_value.iter().all(|v| v.is_finite() && *v >= 0.0));
        // Both defenders earn value against the reactive adversary.
        assert!(run.fpl_value.iter().sum::<f64>() > 0.0);
        assert!(run.ftl_value.iter().sum::<f64>() > 0.0);
    }
}
