#!/usr/bin/env bash
# Tier-1 gate plus lint checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
