/root/repo/target/debug/deps/large_sparse-34a98589e5ca46f3.d: crates/lp/tests/large_sparse.rs

/root/repo/target/debug/deps/large_sparse-34a98589e5ca46f3: crates/lp/tests/large_sparse.rs

crates/lp/tests/large_sparse.rs:
