/root/repo/target/debug/deps/nwdp-15645fd86729d1ea.d: src/lib.rs

/root/repo/target/debug/deps/nwdp-15645fd86729d1ea: src/lib.rs

src/lib.rs:
