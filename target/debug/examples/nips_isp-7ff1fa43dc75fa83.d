/root/repo/target/debug/examples/nips_isp-7ff1fa43dc75fa83.d: examples/nips_isp.rs Cargo.toml

/root/repo/target/debug/examples/libnips_isp-7ff1fa43dc75fa83.rmeta: examples/nips_isp.rs Cargo.toml

examples/nips_isp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
