/root/repo/target/debug/deps/robustness-519ec25e55425016.d: crates/engine/tests/robustness.rs

/root/repo/target/debug/deps/robustness-519ec25e55425016: crates/engine/tests/robustness.rs

crates/engine/tests/robustness.rs:
