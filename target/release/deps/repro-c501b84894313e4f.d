/root/repo/target/release/deps/repro-c501b84894313e4f.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-c501b84894313e4f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
