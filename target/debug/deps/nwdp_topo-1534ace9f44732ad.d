/root/repo/target/debug/deps/nwdp_topo-1534ace9f44732ad.d: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

/root/repo/target/debug/deps/nwdp_topo-1534ace9f44732ad: crates/topo/src/lib.rs crates/topo/src/builtin.rs crates/topo/src/generate.rs crates/topo/src/graph.rs crates/topo/src/io.rs crates/topo/src/rocketfuel.rs crates/topo/src/routing.rs

crates/topo/src/lib.rs:
crates/topo/src/builtin.rs:
crates/topo/src/generate.rs:
crates/topo/src/graph.rs:
crates/topo/src/io.rs:
crates/topo/src/rocketfuel.rs:
crates/topo/src/routing.rs:
