//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;

/// Element-count specification for [`vec`]: a fixed count or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements are drawn independently from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..=self.size.hi)
        };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
