/root/repo/target/debug/deps/proptest_nwdp-8ceeca433a3b105f.d: tests/proptest_nwdp.rs

/root/repo/target/debug/deps/proptest_nwdp-8ceeca433a3b105f: tests/proptest_nwdp.rs

tests/proptest_nwdp.rs:
