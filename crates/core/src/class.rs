//! NIDS analysis classes.
//!
//! §2.1 of the paper abstracts NIDS functions as *classes* `C_i`, each with
//! a traffic specification, a placement scope (which nodes can run it), a
//! per-packet CPU requirement, and a per-item memory requirement. The
//! resource footprints follow the guidelines of Dreger et al. (RAID 2008)
//! as the paper does: CPU cost is per packet, memory cost is per aggregation
//! item (connection, source, destination).

use nwdp_hash::FlowKeyKind;
use std::fmt;

/// Why a scaled class set could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassSetError {
    /// A duplicate-cycle base class (HTTP/IRC/Login/TFTP) is absent from
    /// the set being scaled.
    MissingBase { base: &'static str },
    /// Fewer modules requested than the set already contains.
    TooFew { requested: usize, minimum: usize },
    /// More modules requested than the paper's evaluation covers.
    TooMany { requested: usize, maximum: usize },
}

impl fmt::Display for ClassSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassSetError::MissingBase { base } => {
                write!(f, "duplicate base class {base} is missing from the set")
            }
            ClassSetError::TooFew { requested, minimum } => {
                write!(f, "scaled set needs at least {minimum} modules, got {requested}")
            }
            ClassSetError::TooMany { requested, maximum } => {
                write!(f, "the paper's evaluation tops out at {maximum} modules, got {requested}")
            }
        }
    }
}

impl std::error::Error for ClassSetError {}

/// Where a class's coordination units live (§2.1's placement affinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassScope {
    /// One coordination unit per ingress–egress path; any on-path node is
    /// eligible (e.g. signature matching, HTTP analysis).
    PerPath,
    /// One unit per ingress node; only the ingress observes all traffic a
    /// local host initiates (e.g. outbound scan detection).
    PerIngress,
    /// One unit per egress node; only the egress observes all traffic
    /// reaching a local host (e.g. inbound SYN-flood detection).
    PerEgress,
}

/// A NIDS analysis class `C_i`.
#[derive(Debug, Clone)]
pub struct AnalysisClass {
    pub name: String,
    pub scope: ClassScope,
    /// Header fields hashed for this class's coordination check.
    pub key: FlowKeyKind,
    /// CPU cost per analyzed packet (abstract CPU-µs; relative magnitudes
    /// follow the module profiles of Fig 5).
    pub cpu_per_pkt: f64,
    /// Memory per tracked item (bytes per connection/source/destination).
    pub mem_per_item: f64,
    /// Items per flow for this aggregation level (1.0 for per-connection
    /// classes; < 1 for per-host classes, since many flows share a host).
    pub items_per_flow: f64,
}

impl AnalysisClass {
    fn new(
        name: &str,
        scope: ClassScope,
        key: FlowKeyKind,
        cpu_per_pkt: f64,
        mem_per_item: f64,
        items_per_flow: f64,
    ) -> Self {
        AnalysisClass {
            name: name.to_string(),
            scope,
            key,
            cpu_per_pkt,
            mem_per_item,
            items_per_flow,
        }
    }

    /// The nine-module set of the paper's Fig 5 microbenchmarks.
    ///
    /// Relative CPU/memory footprints follow the figure: Signature is the
    /// most CPU-hungry (payload matching on every packet); HTTP carries the
    /// most per-connection state; Scan/SYNFlood are cheap per packet but
    /// track per-host state.
    pub fn standard_set() -> Vec<AnalysisClass> {
        use ClassScope::*;
        use FlowKeyKind::*;
        vec![
            AnalysisClass::new("Baseline", PerPath, BiSession, 1.0, 240.0, 1.0),
            AnalysisClass::new("Scan", PerIngress, Source, 0.6, 520.0, 0.04),
            AnalysisClass::new("IRC", PerPath, BiSession, 2.2, 340.0, 1.0),
            AnalysisClass::new("Login", PerPath, BiSession, 2.6, 420.0, 1.0),
            AnalysisClass::new("TFTP", PerPath, BiSession, 1.4, 260.0, 1.0),
            AnalysisClass::new("HTTP", PerPath, BiSession, 3.8, 640.0, 1.0),
            AnalysisClass::new("Blaster", PerPath, BiSession, 1.2, 200.0, 1.0),
            AnalysisClass::new("Signature", PerPath, BiSession, 6.5, 300.0, 1.0),
            AnalysisClass::new("SYNFlood", PerEgress, Destination, 0.5, 480.0, 0.04),
        ]
    }

    /// The standard nine plus four real protocol analyzers (DNS, FTP,
    /// SMTP, SSH) — an extension beyond the paper's benchmark set for
    /// users who want coverage of the full generated traffic mix.
    pub fn extended_set() -> Vec<AnalysisClass> {
        use ClassScope::*;
        use FlowKeyKind::*;
        let mut set = Self::standard_set();
        set.push(AnalysisClass::new("DNS", PerPath, BiSession, 1.2, 180.0, 1.0));
        set.push(AnalysisClass::new("FTP", PerPath, BiSession, 2.0, 320.0, 1.0));
        set.push(AnalysisClass::new("SMTP", PerPath, BiSession, 2.4, 380.0, 1.0));
        set.push(AnalysisClass::new("SSH", PerPath, BiSession, 1.0, 220.0, 1.0));
        set
    }

    /// The Fig 6 module-scaling set: the standard nine plus duplicate
    /// instances of HTTP, IRC, Login and TFTP (the paper adds "fake"
    /// duplicates of exactly these), up to `total` modules (max 21).
    pub fn scaled_set(total: usize) -> Result<Vec<AnalysisClass>, ClassSetError> {
        Self::scaled_from(Self::standard_set(), total)
    }

    /// Scale an arbitrary base `set` up to `total` modules with the Fig 6
    /// duplicate cycle. Errors instead of panicking when the request is
    /// out of the paper's range or a cycle base class is missing.
    pub fn scaled_from(
        mut set: Vec<AnalysisClass>,
        total: usize,
    ) -> Result<Vec<AnalysisClass>, ClassSetError> {
        if total < set.len() {
            return Err(ClassSetError::TooFew { requested: total, minimum: set.len() });
        }
        if total > 21 {
            return Err(ClassSetError::TooMany { requested: total, maximum: 21 });
        }
        let dup_names = ["HTTP", "IRC", "Login", "TFTP"];
        let mut gen = 0usize;
        while set.len() < total {
            let base_name = dup_names[gen % dup_names.len()];
            let base = set
                .iter()
                .find(|c| c.name == base_name)
                .ok_or(ClassSetError::MissingBase { base: base_name })?
                .clone();
            let mut dup = base;
            gen += 1;
            dup.name = format!("{base_name}-dup{gen}");
            set.push(dup);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_matches_fig5_modules() {
        let set = AnalysisClass::standard_set();
        assert_eq!(set.len(), 9);
        let names: Vec<_> = set.iter().map(|c| c.name.as_str()).collect();
        for expect in
            ["Baseline", "Scan", "IRC", "Login", "TFTP", "HTTP", "Blaster", "Signature", "SYNFlood"]
        {
            assert!(names.contains(&expect), "missing {expect}");
        }
        // Signature is the CPU-heaviest module.
        let sig = set.iter().find(|c| c.name == "Signature").unwrap();
        for c in &set {
            assert!(c.cpu_per_pkt <= sig.cpu_per_pkt);
        }
    }

    #[test]
    fn scope_assignments() {
        let set = AnalysisClass::standard_set();
        assert_eq!(set.iter().find(|c| c.name == "Scan").unwrap().scope, ClassScope::PerIngress);
        assert_eq!(set.iter().find(|c| c.name == "SYNFlood").unwrap().scope, ClassScope::PerEgress);
        assert_eq!(set.iter().find(|c| c.name == "HTTP").unwrap().scope, ClassScope::PerPath);
    }

    #[test]
    fn scaled_set_reaches_21() {
        let set = AnalysisClass::scaled_set(21).expect("21 is within the paper's range");
        assert_eq!(set.len(), 21);
        // Duplicates come only from the four designated modules.
        for c in set.iter().skip(9) {
            assert!(
                c.name.starts_with("HTTP")
                    || c.name.starts_with("IRC")
                    || c.name.starts_with("Login")
                    || c.name.starts_with("TFTP"),
                "unexpected duplicate {}",
                c.name
            );
        }
        // Names are unique.
        let mut names: Vec<_> = set.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn scaled_set_rejects_out_of_range_totals() {
        assert_eq!(
            AnalysisClass::scaled_set(22).expect_err("over the 21-module cap"),
            ClassSetError::TooMany { requested: 22, maximum: 21 }
        );
        assert_eq!(
            AnalysisClass::scaled_set(4).expect_err("under the standard nine"),
            ClassSetError::TooFew { requested: 4, minimum: 9 }
        );
    }

    #[test]
    fn scaling_without_a_dup_base_is_an_error_not_a_panic() {
        // Drop HTTP — the first base in the duplicate cycle — and ask for
        // more modules than the remaining eight.
        let set: Vec<_> =
            AnalysisClass::standard_set().into_iter().filter(|c| c.name != "HTTP").collect();
        let err = AnalysisClass::scaled_from(set, 12).expect_err("HTTP base is missing");
        assert_eq!(err, ClassSetError::MissingBase { base: "HTTP" });
        assert!(err.to_string().contains("HTTP"));
    }
}
