//! Wall-clock bench for one FPL epoch (oracle solve + bookkeeping): the
//! per-epoch cost bounds how fast the online defense can adapt (§3.5).

use criterion::{criterion_group, criterion_main, Criterion};
use nwdp_core::nips::NipsInstance;
use nwdp_online::{run_fpl, FplConfig, StochasticUniform};
use nwdp_topo::{internet2, PathDb};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};
use std::hint::black_box;

fn instance(n_rules: usize) -> NipsInstance {
    let t = internet2();
    let paths = PathDb::shortest_paths(&t);
    let tm = TrafficMatrix::gravity(&t);
    let vol = VolumeModel::internet2_baseline();
    let rates = MatchRates::zeros(n_rules, paths.all_pairs().count());
    let mut inst = NipsInstance::evaluation_setup(&t, &paths, &tm, &vol, n_rules, 1.0, rates);
    inst.cam_cap = vec![f64::INFINITY; inst.num_nodes];
    inst
}

fn bench_fpl_epochs(c: &mut Criterion) {
    let inst = instance(10);
    let mut g = c.benchmark_group("fpl");
    g.sample_size(10);
    g.bench_function("ten_epochs_10rules", |b| {
        b.iter(|| {
            let mut adv = StochasticUniform::new(10, inst.paths.len(), 0.01, 5);
            let cfg = FplConfig { epochs: 10, seed: 2, ..Default::default() };
            black_box(run_fpl(&inst, &mut adv, &cfg).expect("valid config"))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fpl_epochs);
criterion_main!(benches);
