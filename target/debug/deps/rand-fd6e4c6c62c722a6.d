/root/repo/target/debug/deps/rand-fd6e4c6c62c722a6.d: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-fd6e4c6c62c722a6.rlib: crates/rand/src/lib.rs crates/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-fd6e4c6c62c722a6.rmeta: crates/rand/src/lib.rs crates/rand/src/rngs.rs

crates/rand/src/lib.rs:
crates/rand/src/rngs.rs:
