//! The per-node actor: a mailbox state machine with epoch-fenced
//! manifest installs.
//!
//! A node is deliberately dumb — the paper's whole point is that nodes
//! never coordinate at runtime. All it does is (a) beat on the heartbeat
//! grid and (b) install epoch-numbered manifests, rejecting anything
//! stale: a delayed or retransmitted duplicate of an already-installed
//! epoch draws a [`Msg::StaleReject`], never a second install, so the
//! sequence of epochs a node runs is strictly increasing no matter how
//! the transport reorders pushes. Nodes mutate only their own state and
//! return their outgoing messages to the driver, which lets a
//! same-instant delivery batch fan out across worker threads without any
//! cross-node data race.

use super::{Msg, NetStats};
use nwdp_core::nids::manifest::SamplingManifest;
use nwdp_topo::NodeId;
use std::sync::Arc;

/// One cluster member's control-plane state.
#[derive(Debug, Clone)]
pub struct NodeActor {
    pub id: NodeId,
    /// Epoch of the manifest currently serving. Strictly increasing.
    pub epoch: u64,
    /// The manifest currently serving (last validated install).
    pub manifest: Arc<SamplingManifest>,
    /// Heartbeat sequence counter.
    pub beat_seq: u64,
    /// Alert-report sequence counter.
    pub alert_seq: u64,
    /// Stale pushes this node fenced off.
    pub stale_epoch_rejects: u64,
    /// Install log: `(at, epoch)` in arrival order.
    pub installs: Vec<(f64, u64)>,
}

impl NodeActor {
    /// Boot with the deployment-time manifest pre-installed as epoch 1
    /// (the paper compiles and distributes manifests offline; the cluster
    /// starts converged and re-converges after faults).
    pub fn new(id: NodeId, manifest: Arc<SamplingManifest>) -> Self {
        NodeActor {
            id,
            epoch: 1,
            manifest,
            beat_seq: 0,
            alert_seq: 0,
            stale_epoch_rejects: 0,
            installs: Vec::new(),
        }
    }

    /// Handle one delivered message; the reply (if any) goes back to the
    /// controller. `stats` is this node's private delta, merged by the
    /// driver in node order.
    pub fn on_msg(&mut self, msg: Msg, now: f64, stats: &mut NetStats) -> Option<Msg> {
        match msg {
            Msg::ManifestPush { epoch, manifest, .. } => {
                if epoch > self.epoch {
                    self.epoch = epoch;
                    self.manifest = manifest;
                    self.installs.push((now, epoch));
                    stats.installs += 1;
                    Some(Msg::InstallAck { from: self.id, epoch })
                } else {
                    // Epoch fence: delayed duplicate or reordered older
                    // push. Never installed; the reject tells the
                    // controller what we actually run.
                    self.stale_epoch_rejects += 1;
                    stats.stale_epoch_rejects += 1;
                    Some(Msg::StaleReject { from: self.id, pushed: epoch, current: self.epoch })
                }
            }
            // Control messages addressed to the controller never reach a
            // node; ignore defensively.
            Msg::Heartbeat { .. }
            | Msg::InstallAck { .. }
            | Msg::StaleReject { .. }
            | Msg::AlertReport { .. } => None,
        }
    }

    /// Emit the next heartbeat.
    pub fn beat(&mut self) -> Msg {
        self.beat_seq += 1;
        Msg::Heartbeat { from: self.id, seq: self.beat_seq }
    }

    /// Emit the next batched alert report. The cluster simulation has no
    /// data plane, so `count` is a deterministic stand-in for "alerts
    /// detected since the last report" (`1 + seq mod 3`) — enough to make
    /// the forwarded-alert accounting non-trivial under loss.
    pub fn alert_report(&mut self) -> Msg {
        self.alert_seq += 1;
        Msg::AlertReport { from: self.id, seq: self.alert_seq, count: 1 + self.alert_seq % 3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_manifest() -> Arc<SamplingManifest> {
        Arc::new(SamplingManifest::from_entries(3, Vec::new()))
    }

    #[test]
    fn fencing_rejects_stale_and_duplicate_epochs() {
        let mut n = NodeActor::new(NodeId(1), empty_manifest());
        let mut stats = NetStats::default();
        let m2 = empty_manifest();
        let push = |e: u64| Msg::ManifestPush { epoch: e, manifest: m2.clone(), attempt: 0 };

        // Fresh epoch installs and acks.
        match n.on_msg(push(2), 0.1, &mut stats) {
            Some(Msg::InstallAck { from, epoch }) => assert_eq!((from, epoch), (NodeId(1), 2)),
            other => panic!("expected ack, got {other:?}"),
        }
        assert_eq!(n.epoch, 2);

        // Delayed duplicate of epoch 2: fenced, reports current epoch.
        match n.on_msg(push(2), 0.2, &mut stats) {
            Some(Msg::StaleReject { pushed: 2, current: 2, .. }) => {}
            other => panic!("expected stale reject, got {other:?}"),
        }
        // Reordered older epoch: also fenced.
        match n.on_msg(push(1), 0.3, &mut stats) {
            Some(Msg::StaleReject { pushed: 1, current: 2, .. }) => {}
            other => panic!("expected stale reject, got {other:?}"),
        }
        assert_eq!(n.stale_epoch_rejects, 2);
        assert_eq!(stats.stale_epoch_rejects, 2);
        assert_eq!(stats.installs, 1);
        // The install log shows exactly one, strictly increasing, install.
        assert_eq!(n.installs, vec![(0.1, 2)]);
    }

    #[test]
    fn beats_carry_increasing_sequence_numbers() {
        let mut n = NodeActor::new(NodeId(4), empty_manifest());
        for want in 1..=5u64 {
            match n.beat() {
                Msg::Heartbeat { from, seq } => assert_eq!((from, seq), (NodeId(4), want)),
                other => panic!("expected heartbeat, got {other:?}"),
            }
        }
    }
}
