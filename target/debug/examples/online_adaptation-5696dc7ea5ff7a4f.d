/root/repo/target/debug/examples/online_adaptation-5696dc7ea5ff7a4f.d: examples/online_adaptation.rs

/root/repo/target/debug/examples/online_adaptation-5696dc7ea5ff7a4f: examples/online_adaptation.rs

examples/online_adaptation.rs:
