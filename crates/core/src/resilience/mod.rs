//! Node-failure resilience: detection, manifest repair, and graceful
//! degradation under overload.
//!
//! The paper's architecture compiles all coordination into static
//! per-node sampling manifests — powerful precisely because nodes never
//! talk to each other at runtime, but brittle for the same reason: a
//! crashed node leaves its hash ranges silently unobserved until an
//! out-of-band mechanism notices and reacts. This subsystem supplies that
//! mechanism:
//!
//! - [`scenario`] — failure modes and deterministic seeded injection
//!   schedules on the replay-fraction clock,
//! - [`health`] — heartbeat detection windows and coverage-over-time
//!   accounting,
//! - [`repair`] — the greedy fast path (exact range arithmetic with a
//!   provable load bound) and the warm-started LP slow path,
//! - [`degrade`] — deterministic value-ordered load shedding when
//!   capacity, not coverage, is what ran out.
//!
//! [`simulate_node_failure`] strings them together for tests and the
//! `repro resilience` harness, exporting `resilience.*` metrics through
//! `nwdp-obs` when collection is enabled.

pub mod degrade;
pub mod faultplan;
pub mod health;
pub mod repair;
pub mod scenario;

pub use degrade::{distance_weighted_values, shed_overload, DegradeOutcome, ShedAction};
pub use faultplan::{FaultPlan, LinkFault, Partition};
pub use health::{FailureTimeline, HealthConfig, HealthConfigError, HeartbeatMonitor};
pub use repair::{greedy_repair, lp_repair, manifest_loads, LpRepair, RepairOutcome};
pub use scenario::{FailureKind, FailureScenario, FailureSchedule};

use crate::nids::lp::NodeCaps;
use crate::nids::manifest::{SamplingManifest, SWEEP_EPS};
use crate::units::NidsDeployment;
use nwdp_obs as obs;
use nwdp_topo::NodeId;

/// Traffic-weighted fraction of coverage lost when `blind` nodes observe
/// nothing: for every unit, the exact measure of hash space covered by
/// **no** sighted node, weighted by the unit's packet rate. Computed by
/// the same elementary-interval sweep as `verify_coverage_exact`, so a
/// gap narrower than a grid cell cannot hide.
pub fn manifest_gap_fraction(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    blind: &[NodeId],
) -> f64 {
    let mut lost = 0.0;
    let mut total = 0.0;
    let mut cuts: Vec<f64> = Vec::new();
    for (u, unit) in dep.units.iter().enumerate() {
        total += unit.pkts;
        cuts.clear();
        cuts.push(0.0);
        cuts.push(1.0);
        for &j in &unit.nodes {
            if let Some(ranges) = manifest.range(u, j) {
                for seg in ranges.segments() {
                    cuts.push(seg.lo.clamp(0.0, 1.0));
                    cuts.push(seg.hi.clamp(0.0, 1.0));
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        let mut gap = 0.0;
        for w in 0..cuts.len() - 1 {
            let (a, b) = (cuts[w], cuts[w + 1]);
            if b - a <= SWEEP_EPS {
                continue;
            }
            let h = 0.5 * (a + b);
            let sighted =
                unit.nodes.iter().any(|&j| !blind.contains(&j) && manifest.should_analyze(u, j, h));
            if !sighted {
                gap += b - a;
            }
        }
        lost += gap.min(1.0) * unit.pkts;
    }
    if total > 0.0 {
        lost / total
    } else {
        0.0
    }
}

/// Convenience: `1 - manifest_gap_fraction`.
pub fn covered_fraction(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    blind: &[NodeId],
) -> f64 {
    1.0 - manifest_gap_fraction(dep, manifest, blind)
}

/// One simulated failure end to end: detect, repair, account.
#[derive(Debug, Clone)]
pub struct FailureReport {
    pub node: NodeId,
    pub timeline: FailureTimeline,
    pub repair: RepairOutcome,
}

/// Simulate a crash of `node` at replay fraction `at`: the health check
/// detects it after its configured window, the greedy fast path repairs
/// the manifest, and the timeline records the exact traffic-weighted
/// coverage gap during the blind window and the residual gap after
/// repair.
///
/// Exports (when `obs` collection is on): `resilience.repairs`,
/// `resilience.repair_ns`, `resilience.units_repaired`,
/// `resilience.units_unrecoverable`, `resilience.moved_measure`,
/// `resilience.coverage_gap`, `resilience.residual_gap`.
pub fn simulate_node_failure(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    caps: &[NodeCaps],
    node: NodeId,
    at: f64,
    health: &HealthConfig,
) -> FailureReport {
    let detected_at = health.detect_at(at);
    let blind_gap = manifest_gap_fraction(dep, manifest, &[node]);
    let _span = obs::span!("resilience.repair", node = node.0, fail_at = at);
    let t0 = obs::now_if_enabled();
    let repair = greedy_repair(dep, manifest, caps, &[node]);
    let residual_gap = manifest_gap_fraction(dep, &repair.manifest, &[node]);
    obs::trace_event!(
        "resilience.repaired",
        node = node.0,
        detected_at = detected_at,
        blind_gap = blind_gap,
        residual_gap = residual_gap,
        units_repaired = repair.repaired_units,
        unrecoverable = repair.unrecoverable.len()
    );
    if obs::enabled() {
        let s = obs::Scope::new("resilience");
        s.counter("repairs").inc();
        s.timer("repair_ns").observe_since(t0);
        s.counter("units_repaired").add(repair.repaired_units as u64);
        s.counter("units_unrecoverable").add(repair.unrecoverable.len() as u64);
        s.gauge("moved_measure").set(repair.moved_measure);
        s.gauge("coverage_gap").set_max(blind_gap);
        s.gauge("residual_gap").set_max(residual_gap);
    }
    FailureReport {
        node,
        timeline: FailureTimeline {
            fail_at: at,
            detected_at,
            repaired_at: detected_at,
            blind_gap,
            residual_gap,
        },
        repair,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::lp::{solve_nids_lp, NidsLpConfig};
    use crate::nids::manifest::generate_manifests;
    use crate::units::build_units;
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn setup() -> (NidsDeployment, NidsLpConfig, SamplingManifest) {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        let dep = build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set());
        let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&dep, &cfg).unwrap();
        let m = generate_manifests(&dep, &a.d);
        (dep, cfg, m)
    }

    #[test]
    fn blind_gap_equals_traffic_weighted_share() {
        let (dep, _, m) = setup();
        let node = NodeId(5);
        let gap = manifest_gap_fraction(&dep, &m, &[node]);
        // At redundancy 1 the gap is exactly the node's traffic-weighted
        // manifest share.
        let total: f64 = dep.units.iter().map(|u| u.pkts).sum();
        let share: f64 =
            dep.units.iter().enumerate().map(|(u, unit)| m.share(u, node) * unit.pkts).sum::<f64>()
                / total;
        assert!((gap - share).abs() < 1e-9, "gap {gap} vs share {share}");
        assert!(gap > 0.0, "an Internet2 node always carries something");
        assert!((covered_fraction(&dep, &m, &[node]) - (1.0 - gap)).abs() < 1e-12);
        // No blindness, no gap.
        assert_eq!(manifest_gap_fraction(&dep, &m, &[]), 0.0);
    }

    #[test]
    fn simulated_crash_recovers_all_but_single_node_units() {
        let (dep, cfg, m) = setup();
        let health = HealthConfig::default();
        let report = simulate_node_failure(&dep, &m, &cfg.caps, NodeId(3), 0.37, &health);
        let tl = &report.timeline;
        assert!((tl.detected_at - health.detect_at(0.37)).abs() < 1e-12);
        assert!(tl.blind_gap > 0.0);
        // The residual gap is exactly the unrecoverable traffic fraction
        // (the crashed node's ingress/egress units).
        assert!(
            (tl.residual_gap - report.repair.unrecoverable_traffic_fraction).abs() < 1e-9,
            "residual {} vs unrecoverable {}",
            tl.residual_gap,
            report.repair.unrecoverable_traffic_fraction
        );
        assert!(tl.residual_gap < tl.blind_gap, "repair must recover something");
        // Coverage steps: full → blind → repaired.
        assert_eq!(tl.coverage_at(0.1), 1.0);
        assert!(tl.coverage_at(0.38) < 1.0 - 1e-6);
        assert!(tl.coverage_at(0.9) > tl.coverage_at(0.38));
    }
}
