//! Fig 10 — quality of the NIPS approximation algorithms.
//!
//! For each topology (Internet2/Abilene, Geant, AS1221, AS1239, AS3257)
//! and each rule-capacity fraction (0.05 … 0.25): generate match-rate
//! scenarios `M ~ U[0, 0.01]`, solve the LP relaxation (`OptLP`), run the
//! rounding pipeline (best of N iterations), and report the achieved
//! fraction of `OptLP` as mean/min/max across scenarios —
//! (a) rounding + LP re-solve, (b) rounding + greedy + LP re-solve.
//! We additionally report the paper's unrefined Fig 9 algorithm (scaled),
//! which the paper describes but does not plot.

use crate::output::{f3, Table};
use crate::scenario::Scale;
use nwdp_core::nips::{round_best_of, solve_relaxation, NipsInstance, RoundingOpts, Strategy};
use nwdp_lp::rowgen::RowGenOpts;
use nwdp_topo::{as1221, as1239, as3257, geant, internet2, PathDb, Topology};
use nwdp_traffic::{MatchRates, TrafficMatrix, VolumeModel};

/// Path cap for the larger ISP topologies (top pairs by gravity volume);
/// see EXPERIMENTS.md for the substitution note.
pub const MAX_PATHS: usize = 600;

/// Aggregated result for one (topology, capacity) configuration.
#[derive(Debug, Clone)]
pub struct Fig10Point {
    pub topology: String,
    pub cap_frac: f64,
    /// Fraction of OptLP: (mean, min, max) across scenarios.
    pub scaled: (f64, f64, f64),
    pub lp_resolve: (f64, f64, f64),
    pub greedy: (f64, f64, f64),
}

pub fn topologies() -> Vec<Topology> {
    vec![internet2(), geant(), as1221(), as1239(), as3257()]
}

fn agg(xs: &[f64]) -> (f64, f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

/// Run Fig 10 for one topology at one capacity fraction.
pub fn run_config(topo: &Topology, cap_frac: f64, scale: Scale, base_seed: u64) -> Fig10Point {
    let paths = PathDb::shortest_paths(topo);
    let tm = TrafficMatrix::gravity(topo);
    let vol = VolumeModel::scaled_for(topo);
    let n_rules = scale.fig10_rules();
    let n_paths = paths.all_pairs().count().min(MAX_PATHS);

    let mut scaled = Vec::new();
    let mut resolve = Vec::new();
    let mut greedy = Vec::new();
    for sc in 0..scale.fig10_scenarios() {
        let seed = base_seed + sc as u64;
        let rates = MatchRates::uniform_001(n_rules, n_paths, seed);
        let inst = NipsInstance::evaluation_setup_capped(
            topo, &paths, &tm, &vol, n_rules, cap_frac, rates, MAX_PATHS,
        );
        let relax = solve_relaxation(&inst, &RowGenOpts::default()).expect("relaxation must solve");
        for (strategy, out) in [
            (Strategy::ScaledFig9, &mut scaled),
            (Strategy::LpResolve, &mut resolve),
            (Strategy::GreedyLpResolve, &mut greedy),
        ] {
            let opts = RoundingOpts {
                strategy,
                iterations: scale.fig10_iterations(),
                seed: seed * 31 + 1,
                ..Default::default()
            };
            let sol = round_best_of(&inst, &relax, &opts).expect("rounding failed");
            out.push(sol.objective / relax.objective.max(1e-12));
        }
    }
    Fig10Point {
        topology: topo.name.clone(),
        cap_frac,
        scaled: agg(&scaled),
        lp_resolve: agg(&resolve),
        greedy: agg(&greedy),
    }
}

/// Full Fig 10 sweep: one scoped thread per (topology, capacity)
/// configuration, results in sweep order.
pub fn run(scale: Scale, topos: &[Topology]) -> Vec<Fig10Point> {
    let configs: Vec<(&Topology, f64, u64)> = topos
        .iter()
        .flat_map(|topo| {
            scale
                .fig10_cap_fracs()
                .into_iter()
                .enumerate()
                .map(move |(ci, cap)| (topo, cap, 10_000 + ci as u64 * 1000))
        })
        .collect();
    nwdp_core::parallel::par_map(&configs, |_, &(topo, cap, seed)| {
        run_config(topo, cap, scale, seed)
    })
}

pub fn table(points: &[Fig10Point]) -> Table {
    let mut t = Table::new(
        "Fig 10: fraction of the LP upper bound achieved by the rounding algorithms",
        &[
            "topology",
            "rule cap",
            "fig9-scaled mean",
            "(a) round+LP mean",
            "min",
            "max",
            "(b) +greedy mean",
            "min",
            "max",
        ],
    );
    for p in points {
        t.row(vec![
            p.topology.clone(),
            format!("{:.2}", p.cap_frac),
            f3(p.scaled.0),
            f3(p.lp_resolve.0),
            f3(p.lp_resolve.1),
            f3(p.lp_resolve.2),
            f3(p.greedy.0),
            f3(p.greedy.1),
            f3(p.greedy.2),
        ]);
    }
    t
}
