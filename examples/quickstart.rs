//! Quickstart: deploy a coordinated NIDS across the Internet2 backbone.
//!
//! Walks the full pipeline: topology → routing → traffic model →
//! coordination units → assignment LP → sampling manifests → what each
//! node ends up responsible for.
//!
//! Run with: `cargo run --release --example quickstart`

use nwdp::prelude::*;

fn main() {
    // 1. The network: the 11-PoP Internet2/Abilene backbone with
    //    deterministic shortest-path routing and a gravity traffic matrix.
    let topo = nwdp::topo::internet2();
    let paths = PathDb::shortest_paths(&topo);
    let tm = TrafficMatrix::gravity(&topo);
    let vol = VolumeModel::internet2_baseline();
    println!("topology: {} ({} nodes, {} links)", topo.name, topo.num_nodes(), topo.num_links());
    println!(
        "volume:   {:.0}M flows / {:.0}M packets per 5 min\n",
        vol.flows / 1e6,
        vol.pkts / 1e6
    );

    // 2. NIDS analysis classes and their coordination units.
    let classes = AnalysisClass::standard_set();
    let dep = build_units(&topo, &paths, &tm, &vol, &classes);
    println!(
        "{} analysis classes partitioned into {} coordination units",
        dep.classes.len(),
        dep.units.len()
    );

    // 3. Solve the assignment LP: minimize the maximum CPU/memory load.
    let cfg = NidsLpConfig::homogeneous(dep.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
    let assignment = solve_nids_lp(&dep, &cfg).expect("LP solves");
    println!(
        "optimal max load: {:.1}% of node capacity ({} simplex iterations)\n",
        assignment.max_load * 100.0,
        assignment.lp_iterations
    );

    // 4. Compare against the single-vantage-point (edge-only) deployment.
    let (ecpu, emem) = edge_only_loads(&dep, &cfg.caps);
    let edge_max = ecpu.iter().chain(&emem).fold(0.0f64, |m, &x| m.max(x));
    println!("edge-only max load:   {:.1}%", edge_max * 100.0);
    println!(
        "coordination reduces the bottleneck by {:.0}%\n",
        (1.0 - assignment.max_load / edge_max) * 100.0
    );

    // 5. Compile hash-range sampling manifests (Fig 2) and inspect them.
    let manifest = generate_manifests(&dep, &assignment.d);
    let (lo, hi) = manifest.verify_coverage(&dep, 101);
    println!("coverage check: every hash point covered between {lo} and {hi} times");
    println!("\nper-node responsibilities (share of total analysis work):");
    for node in topo.nodes() {
        let share: f64 =
            manifest.node_entries(node).iter().map(|e| e.ranges.measure()).sum::<f64>()
                / dep.units.len() as f64;
        println!(
            "  {:>14}  cpu {:>5.1}%  mem {:>5.1}%  avg hash share {:>5.2}%",
            topo.node(node).name,
            assignment.cpu_load[node.index()] * 100.0,
            assignment.mem_load[node.index()] * 100.0,
            share * 100.0
        );
    }

    // 6. The per-packet check (Fig 3): where would one HTTP session go?
    let hasher = KeyedHasher::with_key(0x5EC_C0DE);
    let t = FiveTuple::new(
        nwdp::traffic::host_ip(NodeId(0), 17),
        nwdp::traffic::host_ip(NodeId(10), 99),
        40001,
        80,
        6,
    );
    let h = hasher.unit_hash(&t, FlowKeyKind::BiSession);
    // Find the HTTP class's unit for the Seattle → New York path.
    let http = dep.classes.iter().position(|c| c.name == "HTTP").unwrap();
    let unit = dep
        .units
        .iter()
        .position(|u| u.class == http && u.key == UnitKey::Path(NodeId(0), NodeId(10)))
        .unwrap();
    println!("\nan HTTP session Seattle → New York hashes to {h:.4};");
    for &n in &dep.units[unit].nodes {
        if manifest.should_analyze(unit, n, h) {
            println!("it is analyzed at {} — and nowhere else.", topo.node(n).name);
        }
    }
}
