//! Sampling manifests (paper Fig 2) and the per-node coordination check
//! (paper Fig 3).
//!
//! `GENERATE-NIDS-MANIFEST` converts the optimal fractional assignment
//! `d*` into **non-overlapping hash ranges** per coordination unit: walking
//! the unit's nodes in a fixed order, node `j` receives
//! `[Range, Range + d*_ikj)`. Because every node hashes packets with the
//! same keyed function, the ranges partition the hash space and each item
//! is analyzed exactly once network-wide — with zero runtime coordination.
//!
//! With the redundancy extension (§2.5) the covered space is `[0, r)`; the
//! running range wraps around the unit interval, so a node's share can be
//! a two-segment [`RangeSet`]. Since each `d ≤ 1`, a node never wraps onto
//! itself, guaranteeing `r` *distinct* nodes per point.

use crate::nids::lp::NodeCaps;
use crate::units::{NidsDeployment, UnitKey};
use nwdp_hash::RangeSet;
use nwdp_topo::NodeId;
use std::collections::HashMap;

/// One node's responsibility for one coordination unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Class index in the deployment.
    pub class: usize,
    /// Unit index in the deployment.
    pub unit: usize,
    pub key: UnitKey,
    pub ranges: RangeSet,
}

/// The network-wide set of sampling manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingManifest {
    /// Entries grouped per node.
    per_node: Vec<Vec<ManifestEntry>>,
    /// `(unit index, node)` → position in `per_node[node]`.
    index: HashMap<(usize, usize), usize>,
}

/// Fig 2: translate the optimal solution into sampling manifests.
///
/// `d[u]` lists `(node, fraction)` in a fixed node order (the order of
/// `dep.units[u].nodes`; the paper notes the order does not matter as long
/// as it is consistent).
pub fn generate_manifests(dep: &NidsDeployment, d: &[Vec<(NodeId, f64)>]) -> SamplingManifest {
    assert_eq!(d.len(), dep.units.len(), "assignment/unit count mismatch");
    let mut per_node: Vec<Vec<ManifestEntry>> = vec![Vec::new(); dep.num_nodes];
    let mut index = HashMap::new();
    for (u, unit) in dep.units.iter().enumerate() {
        let mut range = 0.0f64;
        for &(j, frac) in &d[u] {
            debug_assert!((0.0..=1.0 + 1e-9).contains(&frac), "fraction {frac} out of range");
            if frac <= 1e-12 {
                continue;
            }
            let ranges = RangeSet::wrapped(range, range + frac);
            range += frac;
            let entry = ManifestEntry { class: unit.class, unit: u, key: unit.key, ranges };
            index.insert((u, j.index()), per_node[j.index()].len());
            per_node[j.index()].push(entry);
        }
    }
    SamplingManifest { per_node, index }
}

/// Seam tolerance for the exact coverage sweep: ~4 ulps of the 2⁻³² hash
/// lattice the engine quantizes to. Endpoints closer than this are one
/// seam; intervals narrower than this carry no representable hash value.
pub const SWEEP_EPS: f64 = 1e-9;

impl SamplingManifest {
    /// Rebuild a manifest from explicit per-node entries (one entry per
    /// `(unit, node)` pair at most). This is how the resilience repair
    /// paths construct manifests: they move *specific hash segments*
    /// between nodes, which the fractional [`generate_manifests`] walk
    /// cannot express.
    pub fn from_entries(
        num_nodes: usize,
        entries: impl IntoIterator<Item = (NodeId, ManifestEntry)>,
    ) -> SamplingManifest {
        let mut per_node: Vec<Vec<ManifestEntry>> = vec![Vec::new(); num_nodes];
        let mut index = HashMap::new();
        for (node, entry) in entries {
            if entry.ranges.is_empty() {
                continue;
            }
            let prev = index.insert((entry.unit, node.index()), per_node[node.index()].len());
            assert!(prev.is_none(), "duplicate manifest entry for unit {} at {node:?}", entry.unit);
            per_node[node.index()].push(entry);
        }
        SamplingManifest { per_node, index }
    }

    /// All of `node`'s responsibilities.
    pub fn node_entries(&self, node: NodeId) -> &[ManifestEntry] {
        &self.per_node[node.index()]
    }

    /// Number of nodes the manifest was compiled for.
    pub fn num_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// The hash range `HashRange(i, k, j)` for unit `u` at `node`, if any.
    pub fn range(&self, unit: usize, node: NodeId) -> Option<&RangeSet> {
        self.index.get(&(unit, node.index())).map(|&pos| &self.per_node[node.index()][pos].ranges)
    }

    /// Fig 3 line 5: should `node` run the unit's class on a packet whose
    /// coordination hash is `h ∈ [0, 1)`?
    pub fn should_analyze(&self, unit: usize, node: NodeId, h: f64) -> bool {
        self.range(unit, node).is_some_and(|r| r.contains(h))
    }

    /// Fraction of the unit's hash space assigned to `node`.
    pub fn share(&self, unit: usize, node: NodeId) -> f64 {
        self.range(unit, node).map_or(0.0, |r| r.measure())
    }

    /// Verify the manifest invariants for every unit:
    /// 1. the ranges of distinct nodes are disjoint within each unit
    ///    (multiplicity never exceeds the redundancy level), and
    /// 2. every point of the hash space is covered exactly `r` times by
    ///    `r` distinct nodes.
    ///
    /// Thin wrapper over [`verify_coverage_exact`]: historically this
    /// probed a midpoint grid of `grid` points, which could miss gaps or
    /// overlaps narrower than a grid cell; the check is now an exact
    /// interval sweep and the `grid` argument is ignored (kept for API
    /// compatibility).
    ///
    /// [`verify_coverage_exact`]: SamplingManifest::verify_coverage_exact
    pub fn verify_coverage(&self, dep: &NidsDeployment, _grid: usize) -> (usize, usize) {
        self.verify_coverage_exact(dep)
    }

    /// Exact coverage check: for every unit, sweep the *elementary
    /// intervals* induced by the segment endpoints of all of the unit's
    /// node ranges. Coverage multiplicity is constant on each elementary
    /// interval, so probing one interior point per interval is exact — no
    /// gap or overlap can hide between probe points, unlike the old grid
    /// sampling. Endpoints within [`SWEEP_EPS`] collapse into one seam
    /// (FP drift from the running-range walk in [`generate_manifests`]
    /// lives below the hash lattice and is not a real gap).
    ///
    /// Returns the coverage multiplicity (min, max) over all units.
    pub fn verify_coverage_exact(&self, dep: &NidsDeployment) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for u in 0..dep.units.len() {
            let (ulo, uhi) = self.unit_coverage_exact(dep, u);
            lo = lo.min(ulo);
            hi = hi.max(uhi);
        }
        (lo, hi)
    }

    /// The exact-sweep coverage multiplicity (min, max) of one unit. The
    /// resilience layer uses this to verify repaired units individually
    /// while failed single-node units are accounted as shed rather than
    /// flagged as gaps.
    pub fn unit_coverage_exact(&self, dep: &NidsDeployment, u: usize) -> (usize, usize) {
        let unit = &dep.units[u];
        let mut cuts: Vec<f64> = vec![0.0, 1.0];
        for &j in &unit.nodes {
            if let Some(ranges) = self.range(u, j) {
                for seg in ranges.segments() {
                    cuts.push(seg.lo.clamp(0.0, 1.0));
                    cuts.push(seg.hi.clamp(0.0, 1.0));
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for w in 0..cuts.len() - 1 {
            let (a, b) = (cuts[w], cuts[w + 1]);
            if b - a <= SWEEP_EPS {
                continue; // sub-lattice sliver: no representable hash
            }
            let h = 0.5 * (a + b);
            let covers = unit.nodes.iter().filter(|&&j| self.should_analyze(u, j, h)).count();
            lo = lo.min(covers);
            hi = hi.max(covers);
        }
        (lo, hi)
    }
}

/// Why the validation gate rejected a candidate manifest. Every variant
/// names the first offending unit/node in deterministic iteration order,
/// so a rejection is reproducible and debuggable from the error alone.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestValidationError {
    /// The manifest was compiled for a different node count.
    NodeCountMismatch { manifest: usize, deployment: usize },
    /// An entry references a unit index outside the deployment.
    UnknownUnit { node: usize, unit: usize },
    /// An entry references a class index with no registered analysis class.
    UnknownClass { unit: usize, class: usize },
    /// An entry's class disagrees with the unit's class in the deployment.
    ClassMismatch { unit: usize, entry: usize, expected: usize },
    /// An entry's coordination key disagrees with the unit's key.
    KeyMismatch { unit: usize },
    /// An entry assigns hash space to a node outside the unit's eligible
    /// set — traffic for the unit never transits that node, so the range
    /// would silently go unanalyzed.
    ForeignNode { unit: usize, node: usize },
    /// A range segment is non-finite or escapes the unit hash interval.
    MalformedRange { unit: usize, node: usize, lo: f64, hi: f64 },
    /// Some hash interval of the unit is covered by fewer than
    /// `redundancy` distinct nodes.
    CoverageGap { unit: usize, lo: f64, hi: f64, covers: usize, want: usize },
    /// Some hash interval of the unit is covered by more than
    /// `redundancy` distinct nodes (duplicate analysis).
    CoverageOverlap { unit: usize, lo: f64, hi: f64, covers: usize, want: usize },
    /// A node's manifest-implied load exceeds the capacity ceiling.
    CapacityExceeded { node: usize, resource: &'static str, load: f64, limit: f64 },
}

impl std::fmt::Display for ManifestValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ManifestValidationError::*;
        match self {
            NodeCountMismatch { manifest, deployment } => {
                write!(f, "manifest compiled for {manifest} nodes, deployment has {deployment}")
            }
            UnknownUnit { node, unit } => {
                write!(f, "node {node} references unknown unit {unit}")
            }
            UnknownClass { unit, class } => {
                write!(f, "unit {unit} references unknown analysis class {class}")
            }
            ClassMismatch { unit, entry, expected } => {
                write!(f, "unit {unit} entry carries class {entry}, deployment says {expected}")
            }
            KeyMismatch { unit } => {
                write!(f, "unit {unit} entry carries a different coordination key")
            }
            ForeignNode { unit, node } => {
                write!(f, "unit {unit} assigns hash space to off-path node {node}")
            }
            MalformedRange { unit, node, lo, hi } => {
                write!(f, "unit {unit} node {node} has malformed range [{lo}, {hi})")
            }
            CoverageGap { unit, lo, hi, covers, want } => {
                write!(
                    f,
                    "unit {unit}: [{lo:.6}, {hi:.6}) covered by {covers} distinct nodes, need {want}"
                )
            }
            CoverageOverlap { unit, lo, hi, covers, want } => {
                write!(
                    f,
                    "unit {unit}: [{lo:.6}, {hi:.6}) covered by {covers} distinct nodes, want {want}"
                )
            }
            CapacityExceeded { node, resource, load, limit } => {
                write!(f, "node {node} {resource} load {load:.3} exceeds ceiling {limit:.3}")
            }
        }
    }
}

impl std::error::Error for ManifestValidationError {}

/// Optional capacity check for [`validate_manifests`]: reject manifests
/// whose implied per-node cpu/mem load (same formula as
/// [`loads_from_assignment`](crate::nids::lp::loads_from_assignment), with
/// manifest shares as the fractions) exceeds `max_load`.
#[derive(Debug, Clone)]
pub struct CapacityCeiling<'a> {
    pub caps: &'a [NodeCaps],
    /// Load ceiling as a fraction of capacity (1.0 = exactly at capacity).
    pub max_load: f64,
}

/// The validation gate in front of `Engine::set_manifest`: decide whether a
/// candidate manifest is safe to serve *before* any engine swaps to it.
///
/// Checks, in deterministic order:
/// 1. structural integrity — node count, unit/class/key indices resolve in
///    `dep`, ranges only on eligible nodes, segments finite inside `[0, 1]`;
/// 2. exact coverage — every unit's hash space covered by exactly
///    `round(redundancy)` *distinct* nodes (elementary-interval sweep, the
///    same arithmetic as [`SamplingManifest::unit_coverage_exact`], so no
///    gap or overlap wider than [`SWEEP_EPS`] can hide);
/// 3. capacity — when `ceiling` is given, the manifest-implied load of
///    every node stays at or under `ceiling.max_load`.
///
/// Returns the first violation found; `Ok(())` means the manifest may go
/// live. Callers keep the previous manifest serving on `Err`.
pub fn validate_manifests(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    redundancy: f64,
    ceiling: Option<&CapacityCeiling<'_>>,
) -> Result<(), ManifestValidationError> {
    validate_manifests_excluding(dep, manifest, redundancy, ceiling, &[])
}

/// [`validate_manifests`] with an explicit allowance for *known* coverage
/// gaps: unit indices in `skip_units` are exempt from the exact-coverage
/// sweep (structural and capacity checks still apply everywhere).
///
/// This is the gate for post-repair manifests: `greedy_repair` /
/// `lp_repair` report units whose only eligible observer failed as
/// `unrecoverable` / `degraded_units` — those units legitimately have no
/// coverage, and a gate that rejected the otherwise-sound repair for them
/// would force the cluster to keep serving the *stale* manifest, which is
/// strictly worse. Everything **not** listed is still held to exact
/// coverage, so the allowance cannot mask an unrelated gap.
pub fn validate_manifests_excluding(
    dep: &NidsDeployment,
    manifest: &SamplingManifest,
    redundancy: f64,
    ceiling: Option<&CapacityCeiling<'_>>,
    skip_units: &[usize],
) -> Result<(), ManifestValidationError> {
    use ManifestValidationError as E;
    if manifest.num_nodes() != dep.num_nodes {
        return Err(E::NodeCountMismatch {
            manifest: manifest.num_nodes(),
            deployment: dep.num_nodes,
        });
    }
    // 1. Structural integrity, per node in order.
    for j in 0..dep.num_nodes {
        for entry in manifest.node_entries(NodeId(j)) {
            let Some(unit) = dep.units.get(entry.unit) else {
                return Err(E::UnknownUnit { node: j, unit: entry.unit });
            };
            if entry.class >= dep.classes.len() {
                return Err(E::UnknownClass { unit: entry.unit, class: entry.class });
            }
            if entry.class != unit.class {
                return Err(E::ClassMismatch {
                    unit: entry.unit,
                    entry: entry.class,
                    expected: unit.class,
                });
            }
            if entry.key != unit.key {
                return Err(E::KeyMismatch { unit: entry.unit });
            }
            if !unit.nodes.contains(&NodeId(j)) {
                return Err(E::ForeignNode { unit: entry.unit, node: j });
            }
            for seg in entry.ranges.segments() {
                let bad = !seg.lo.is_finite()
                    || !seg.hi.is_finite()
                    || seg.lo < -SWEEP_EPS
                    || seg.hi > 1.0 + SWEEP_EPS
                    || seg.hi < seg.lo;
                if bad {
                    return Err(E::MalformedRange {
                        unit: entry.unit,
                        node: j,
                        lo: seg.lo,
                        hi: seg.hi,
                    });
                }
            }
        }
    }
    // 2. Exact per-unit coverage at the redundancy multiplicity.
    let want = (redundancy.round() as usize).max(1);
    for (u, unit) in dep.units.iter().enumerate() {
        if skip_units.contains(&u) {
            continue;
        }
        let mut cuts: Vec<f64> = vec![0.0, 1.0];
        for &j in &unit.nodes {
            if let Some(ranges) = manifest.range(u, j) {
                for seg in ranges.segments() {
                    cuts.push(seg.lo.clamp(0.0, 1.0));
                    cuts.push(seg.hi.clamp(0.0, 1.0));
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        for w in 0..cuts.len() - 1 {
            let (a, b) = (cuts[w], cuts[w + 1]);
            if b - a <= SWEEP_EPS {
                continue; // sub-lattice sliver: no representable hash
            }
            let h = 0.5 * (a + b);
            let covers = unit.nodes.iter().filter(|&&j| manifest.should_analyze(u, j, h)).count();
            if covers < want {
                return Err(E::CoverageGap { unit: u, lo: a, hi: b, covers, want });
            }
            if covers > want {
                return Err(E::CoverageOverlap { unit: u, lo: a, hi: b, covers, want });
            }
        }
    }
    // 3. Capacity ceiling from manifest-implied loads.
    if let Some(ceiling) = ceiling {
        debug_assert_eq!(ceiling.caps.len(), dep.num_nodes, "caps per node");
        let mut cpu = vec![0.0f64; dep.num_nodes];
        let mut mem = vec![0.0f64; dep.num_nodes];
        for (u, unit) in dep.units.iter().enumerate() {
            let class = &dep.classes[unit.class];
            for &j in &unit.nodes {
                let share = manifest.share(u, j);
                if share <= 0.0 {
                    continue;
                }
                cpu[j.index()] +=
                    class.cpu_per_pkt * unit.pkts * share / ceiling.caps[j.index()].cpu;
                mem[j.index()] +=
                    class.mem_per_item * unit.items * share / ceiling.caps[j.index()].mem;
            }
        }
        for j in 0..dep.num_nodes {
            if cpu[j] > ceiling.max_load + 1e-9 {
                return Err(E::CapacityExceeded {
                    node: j,
                    resource: "cpu",
                    load: cpu[j],
                    limit: ceiling.max_load,
                });
            }
            if mem[j] > ceiling.max_load + 1e-9 {
                return Err(E::CapacityExceeded {
                    node: j,
                    resource: "mem",
                    load: mem[j],
                    limit: ceiling.max_load,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::AnalysisClass;
    use crate::nids::lp::{solve_nids_lp, NidsLpConfig, NodeCaps};
    use crate::units::{build_units, NidsDeployment};
    use nwdp_topo::{internet2, PathDb};
    use nwdp_traffic::{TrafficMatrix, VolumeModel};

    fn dep() -> NidsDeployment {
        let t = internet2();
        let paths = PathDb::shortest_paths(&t);
        let tm = TrafficMatrix::gravity(&t);
        let vol = VolumeModel::internet2_baseline();
        build_units(&t, &paths, &tm, &vol, &AnalysisClass::standard_set())
    }

    #[test]
    fn optimal_assignment_yields_exact_single_coverage() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        let (lo, hi) = m.verify_coverage(&d, 101);
        assert_eq!((lo, hi), (1, 1), "every hash point covered exactly once");
    }

    #[test]
    fn shares_match_fractions() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        for (u, fr) in a.d.iter().enumerate() {
            for &(j, f) in fr {
                assert!(
                    (m.share(u, j) - f).abs() < 1e-9,
                    "unit {u} node {j:?}: share {} vs fraction {f}",
                    m.share(u, j)
                );
            }
        }
    }

    #[test]
    fn redundancy_two_covers_twice_distinctly() {
        let d0 = dep();
        let d2 = NidsDeployment {
            classes: d0.classes.clone(),
            units: d0.units.iter().filter(|u| u.nodes.len() >= 2).cloned().collect(),
            num_nodes: d0.num_nodes,
        };
        let mut cfg = NidsLpConfig::homogeneous(d2.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        cfg.redundancy = 2.0;
        let a = solve_nids_lp(&d2, &cfg).unwrap();
        let m = generate_manifests(&d2, &a.d);
        let (lo, hi) = m.verify_coverage(&d2, 101);
        assert_eq!((lo, hi), (2, 2), "every point covered exactly twice");
    }

    /// One-unit deployment over the first `n` nodes of a line topology,
    /// with explicit per-node range sets.
    fn manifest_of(ranges: Vec<RangeSet>) -> (NidsDeployment, SamplingManifest) {
        let d0 = dep();
        let mut d = d0.clone();
        d.units.truncate(1);
        d.units[0].nodes = (0..ranges.len()).map(NodeId).collect();
        let entries = ranges.into_iter().enumerate().map(|(j, r)| {
            (
                NodeId(j),
                ManifestEntry { class: d.units[0].class, unit: 0, key: d.units[0].key, ranges: r },
            )
        });
        let m = SamplingManifest::from_entries(d.num_nodes, entries);
        (d, m)
    }

    #[test]
    fn exact_sweep_catches_sub_grid_gap() {
        // A gap of width 2e-4 straddling no midpoint of a 101-point grid:
        // the old grid check reported (1, 1); the exact sweep must not.
        let (d, m) =
            manifest_of(vec![RangeSet::interval(0.0, 0.49505), RangeSet::interval(0.49525, 1.0)]);
        let mut grid_lo = usize::MAX;
        for g in 0..101 {
            let h = (g as f64 + 0.5) / 101.0;
            let covers = (0..2).filter(|&j| m.should_analyze(0, NodeId(j), h)).count();
            grid_lo = grid_lo.min(covers);
        }
        assert_eq!(grid_lo, 1, "the grid probe misses the gap");
        assert_eq!(m.verify_coverage_exact(&d), (0, 1), "the sweep finds it");
    }

    #[test]
    fn exact_sweep_catches_sub_grid_overlap() {
        let (d, m) =
            manifest_of(vec![RangeSet::interval(0.0, 0.49535), RangeSet::interval(0.49515, 1.0)]);
        assert_eq!(m.verify_coverage_exact(&d), (1, 2));
    }

    #[test]
    fn exact_sweep_tolerates_sub_lattice_drift() {
        // Endpoints 3e-10 apart (under the 2^-32 hash lattice) are one
        // seam, not a gap.
        let (d, m) =
            manifest_of(vec![RangeSet::interval(0.0, 0.5), RangeSet::interval(0.5 + 3e-10, 1.0)]);
        assert_eq!(m.verify_coverage_exact(&d), (1, 1));
    }

    #[test]
    fn from_entries_round_trips_generated_manifest() {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        let entries = (0..d.num_nodes)
            .flat_map(|j| m.node_entries(NodeId(j)).iter().cloned().map(move |e| (NodeId(j), e)));
        let rebuilt = SamplingManifest::from_entries(d.num_nodes, entries.collect::<Vec<_>>());
        assert_eq!(rebuilt.verify_coverage_exact(&d), (1, 1));
        for (u, _) in d.units.iter().enumerate() {
            for j in 0..d.num_nodes {
                assert_eq!(m.range(u, NodeId(j)), rebuilt.range(u, NodeId(j)));
            }
        }
    }

    #[test]
    fn hand_built_assignment_manifest() {
        // A unit split 0.25 / 0.75 across two nodes.
        let d0 = dep();
        let mut d: Vec<Vec<(NodeId, f64)>> = d0
            .units
            .iter()
            .map(|u| {
                let mut v: Vec<(NodeId, f64)> = u.nodes.iter().map(|&n| (n, 0.0)).collect();
                if v.len() >= 2 {
                    v[0].1 = 0.25;
                    v[1].1 = 0.75;
                } else {
                    v[0].1 = 1.0;
                }
                v
            })
            .collect();
        // Perturb one unit to check `share` on zero-fraction nodes.
        d[0][0].1 = 0.25;
        let m = generate_manifests(&d0, &d);
        let u0 = &d0.units[0];
        assert!((m.share(0, u0.nodes[0]) - 0.25).abs() < 1e-12);
        assert!((m.share(0, u0.nodes[1]) - 0.75).abs() < 1e-12);
        if u0.nodes.len() > 2 {
            assert_eq!(m.share(0, u0.nodes[2]), 0.0);
            assert!(m.range(0, u0.nodes[2]).is_none());
        }
        // Boundary semantics: 0.25 belongs to the second node.
        assert!(m.should_analyze(0, u0.nodes[0], 0.2499));
        assert!(!m.should_analyze(0, u0.nodes[0], 0.25));
        assert!(m.should_analyze(0, u0.nodes[1], 0.25));
    }

    fn lp_manifest() -> (NidsDeployment, SamplingManifest) {
        let d = dep();
        let cfg = NidsLpConfig::homogeneous(d.num_nodes, NodeCaps { cpu: 2e8, mem: 4e9 });
        let a = solve_nids_lp(&d, &cfg).unwrap();
        let m = generate_manifests(&d, &a.d);
        (d, m)
    }

    #[test]
    fn validation_accepts_lp_manifest_under_generous_ceiling() {
        let (d, m) = lp_manifest();
        assert_eq!(validate_manifests(&d, &m, 1.0, None), Ok(()));
        let caps = vec![NodeCaps { cpu: 2e8, mem: 4e9 }; d.num_nodes];
        let ceiling = CapacityCeiling { caps: &caps, max_load: 1.0 };
        assert_eq!(validate_manifests(&d, &m, 1.0, Some(&ceiling)), Ok(()));
    }

    #[test]
    fn validation_rejects_gap_and_overlap() {
        let (d, m) = manifest_of(vec![RangeSet::interval(0.0, 0.4), RangeSet::interval(0.5, 1.0)]);
        match validate_manifests(&d, &m, 1.0, None) {
            Err(ManifestValidationError::CoverageGap { unit: 0, covers: 0, want: 1, .. }) => {}
            other => panic!("expected a coverage gap, got {other:?}"),
        }
        let (d, m) = manifest_of(vec![RangeSet::interval(0.0, 0.6), RangeSet::interval(0.5, 1.0)]);
        match validate_manifests(&d, &m, 1.0, None) {
            Err(ManifestValidationError::CoverageOverlap {
                unit: 0, covers: 2, want: 1, ..
            }) => {}
            other => panic!("expected a coverage overlap, got {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_structural_corruption() {
        let (d, good) = lp_manifest();
        // Unknown unit index.
        let mut entries: Vec<(NodeId, ManifestEntry)> = (0..d.num_nodes)
            .flat_map(|j| good.node_entries(NodeId(j)).iter().cloned().map(move |e| (NodeId(j), e)))
            .collect();
        entries[0].1.unit = d.units.len() + 7;
        let m = SamplingManifest::from_entries(d.num_nodes, entries.clone());
        assert!(matches!(
            validate_manifests(&d, &m, 1.0, None),
            Err(ManifestValidationError::UnknownUnit { .. })
        ));
        // Unknown class / class mismatch on the same entry.
        entries[0].1.unit = good.node_entries(entries[0].0)[0].unit;
        entries[0].1.class = d.classes.len() + 3;
        let m = SamplingManifest::from_entries(d.num_nodes, entries.clone());
        assert!(matches!(
            validate_manifests(&d, &m, 1.0, None),
            Err(ManifestValidationError::UnknownClass { .. })
        ));
        // Node-count mismatch.
        entries[0].1.class = d.units[entries[0].1.unit].class;
        let m = SamplingManifest::from_entries(d.num_nodes + 1, entries);
        assert!(matches!(
            validate_manifests(&d, &m, 1.0, None),
            Err(ManifestValidationError::NodeCountMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_foreign_node_ranges() {
        let (d, good) = lp_manifest();
        // Move some unit's whole range onto a node outside its eligible
        // set: structurally a ForeignNode violation.
        let (u, victim) = d
            .units
            .iter()
            .enumerate()
            .find_map(|(u, unit)| {
                let outsider = (0..d.num_nodes).map(NodeId).find(|n| !unit.nodes.contains(n))?;
                Some((u, outsider))
            })
            .expect("some unit excludes some node");
        let entries = (0..d.num_nodes).flat_map(|j| {
            good.node_entries(NodeId(j)).iter().cloned().map(move |e| {
                let to = if e.unit == u { victim } else { NodeId(j) };
                (to, e)
            })
        });
        let m = SamplingManifest::from_entries(d.num_nodes, entries.collect::<Vec<_>>());
        assert!(matches!(
            validate_manifests(&d, &m, 1.0, None),
            Err(ManifestValidationError::ForeignNode { node, .. }) if node == victim.index()
        ));
    }

    #[test]
    fn validation_rejects_capacity_ceiling_violation() {
        let (d, m) = lp_manifest();
        // Starve one node: its LP-assigned share now exceeds any ceiling.
        let mut caps = vec![NodeCaps { cpu: 2e8, mem: 4e9 }; d.num_nodes];
        let loaded = (0..d.num_nodes)
            .map(NodeId)
            .max_by(|a, b| {
                let sa: f64 = (0..d.units.len()).map(|u| m.share(u, *a)).sum();
                let sb: f64 = (0..d.units.len()).map(|u| m.share(u, *b)).sum();
                sa.total_cmp(&sb)
            })
            .unwrap();
        caps[loaded.index()] = NodeCaps { cpu: 1.0, mem: 1.0 };
        let ceiling = CapacityCeiling { caps: &caps, max_load: 1.0 };
        assert!(matches!(
            validate_manifests(&d, &m, 1.0, Some(&ceiling)),
            Err(ManifestValidationError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn excluding_allows_only_the_listed_gap_units() {
        // Unit 0 has a real gap: rejected plainly, accepted when unit 0 is
        // declared unrecoverable — but only that unit is exempt.
        let (d, m) = manifest_of(vec![RangeSet::interval(0.0, 0.4), RangeSet::interval(0.5, 1.0)]);
        assert!(matches!(
            validate_manifests(&d, &m, 1.0, None),
            Err(ManifestValidationError::CoverageGap { unit: 0, .. })
        ));
        assert_eq!(validate_manifests_excluding(&d, &m, 1.0, None, &[0]), Ok(()));
        // Exempting some other unit does not mask unit 0's gap.
        assert!(matches!(
            validate_manifests_excluding(&d, &m, 1.0, None, &[1]),
            Err(ManifestValidationError::CoverageGap { unit: 0, .. })
        ));
        // Structural checks still apply to exempted units.
        let mut entries: Vec<(NodeId, ManifestEntry)> =
            (0..d.num_nodes).flat_map(|j| good_entries(&m, j)).collect();
        entries[0].1.key = match entries[0].1.key {
            UnitKey::Ingress(n) => UnitKey::Egress(n),
            _ => UnitKey::Ingress(NodeId(0)),
        };
        let bad = SamplingManifest::from_entries(d.num_nodes, entries);
        assert!(matches!(
            validate_manifests_excluding(&d, &bad, 1.0, None, &[0]),
            Err(ManifestValidationError::KeyMismatch { .. })
        ));
    }

    fn good_entries(m: &SamplingManifest, j: usize) -> Vec<(NodeId, ManifestEntry)> {
        m.node_entries(NodeId(j)).iter().cloned().map(|e| (NodeId(j), e)).collect()
    }

    #[test]
    fn validation_checks_redundancy_multiplicity() {
        // Two nodes each covering everything: valid at r=2, overlap at r=1.
        let (d, m) = manifest_of(vec![RangeSet::interval(0.0, 1.0), RangeSet::interval(0.0, 1.0)]);
        assert_eq!(validate_manifests(&d, &m, 2.0, None), Ok(()));
        assert!(matches!(
            validate_manifests(&d, &m, 1.0, None),
            Err(ManifestValidationError::CoverageOverlap { covers: 2, want: 1, .. })
        ));
    }
}
