/root/repo/target/debug/examples/online_adaptation-8efebce2cdca9f4f.d: examples/online_adaptation.rs Cargo.toml

/root/repo/target/debug/examples/libonline_adaptation-8efebce2cdca9f4f.rmeta: examples/online_adaptation.rs Cargo.toml

examples/online_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
