/root/repo/target/debug/examples/online_adaptation-a354038cc059a6bd.d: examples/online_adaptation.rs

/root/repo/target/debug/examples/online_adaptation-a354038cc059a6bd: examples/online_adaptation.rs

examples/online_adaptation.rs:
