/root/repo/target/debug/deps/nwdp-ff3cc18d64c2d2c5.d: src/lib.rs

/root/repo/target/debug/deps/libnwdp-ff3cc18d64c2d2c5.rlib: src/lib.rs

/root/repo/target/debug/deps/libnwdp-ff3cc18d64c2d2c5.rmeta: src/lib.rs

src/lib.rs:
