//! # nwdp-engine — a Bro-like coordinated NIDS engine
//!
//! The paper's prototype extends Bro 1.4 with coordination functions; this
//! crate rebuilds the relevant slice of that architecture as a
//! deterministic emulation (see DESIGN.md → substitutions):
//!
//! - [`conn`]: the event engine's connection records, extended with
//!   precomputed coordination hashes (§2.3);
//! - [`modules`]: the nine benchmark analysis modules of Fig 5 (Baseline,
//!   Scan, IRC, Login, TFTP, HTTP, Blaster, Signature, SYNFlood) over an
//!   [`ac`] Aho–Corasick signature matcher;
//! - [`engine`]: the per-packet pipeline with both coordination-check
//!   placements (event engine vs policy engine) and the
//!   skip-state-creation fast path;
//! - [`cost`]: the deterministic cycle/byte accounting that stands in for
//!   the paper's `atop` measurements;
//! - [`netwide`]: edge-only vs coordinated network-wide runs (Figs 6–8).

pub mod ac;
pub mod cluster;
pub mod conn;
pub mod cost;
pub mod engine;
pub mod modules;
pub mod netwide;
pub mod reload;
pub mod stream;

pub use ac::AhoCorasick;
pub use cluster::{
    run_cluster, Addr, ClusterConfig, ClusterError, ClusterRun, Detection, DetectionCause,
    EpochReport, Msg, NetStats, NodeActor,
};
pub use conn::{ConnRecord, ConnTable};
pub use cost::{CostModel, Meter};
pub use engine::{standalone_coordination, CoordContext, Engine, Placement, RunStats};
pub use modules::{module_for_class, Alert, Analyzer, EngineError, Granularity, Stage};
pub use netwide::{
    coverage_timeline, plan_manifest_epochs, run_coordinated, run_coordinated_resilient,
    run_edge_only, run_edge_only_faulty, run_standalone_reference, ManifestEpoch, NetworkRun,
    ResilienceConfig, ResilientRun,
};
pub use reload::{
    run_coordinated_stream_reload, ObservedMix, ReloadConfig, ReloadController, ReloadDecision,
    ReloadOutcome, ReloadRun, Sabotage,
};
pub use stream::{pkt_latency_bounds, run_coordinated_stream, shard_of, stream_shards};
